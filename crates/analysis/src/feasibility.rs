//! Feasible-region tools (Definitions 3–5).

use rtmac_model::ConfigError;

/// The workload necessary condition for feasibility in a fully-interfering
/// network: delivering `q_n` packets per interval on a channel with success
/// probability `p_n` consumes at least `q_n / p_n` transmission attempts in
/// expectation, and only `budget` attempts fit in an interval. So
///
/// ```text
/// Σ_n q_n / p_n ≤ budget
/// ```
///
/// is necessary (not sufficient — deadlines and burstiness cost more).
/// Returns the utilization `Σ q_n/p_n / budget`; values above 1 certify
/// infeasibility.
///
/// # Errors
///
/// Returns [`ConfigError`] if the slices disagree in length, `budget` is
/// zero, or some `p_n ∉ (0, 1]`.
///
/// # Example
///
/// ```
/// use rtmac_analysis::feasibility::workload_utilization;
///
/// // Fig. 3 at α* = 0.55: q = 0.9·3.5·0.55 per link, 20 links, p = 0.7,
/// // 60-transmission budget.
/// let q = vec![0.9 * 3.5 * 0.55; 20];
/// let p = vec![0.7; 20];
/// let u = workload_utilization(&q, &p, 60)?;
/// assert!(u < 1.0); // necessary condition satisfied
/// # Ok::<(), rtmac_model::ConfigError>(())
/// ```
pub fn workload_utilization(q: &[f64], p: &[f64], budget: u64) -> Result<f64, ConfigError> {
    if q.len() != p.len() {
        return Err(ConfigError::LengthMismatch {
            what: "success probabilities",
            expected: q.len(),
            actual: p.len(),
        });
    }
    if budget == 0 {
        return Err(ConfigError::InvalidParameter {
            name: "transmission budget",
            value: 0.0,
        });
    }
    let mut total = 0.0;
    for (link, (&qn, &pn)) in q.iter().zip(p).enumerate() {
        if !pn.is_finite() || pn <= 0.0 || pn > 1.0 {
            return Err(ConfigError::InvalidSuccessProbability { link, value: pn });
        }
        if !qn.is_finite() || qn < 0.0 {
            return Err(ConfigError::InvalidRequirement { link, value: qn });
        }
        total += qn / pn;
    }
    Ok(total / budget as f64)
}

/// Searches for the boundary of the feasible region along a one-parameter
/// load family by bisection: `probe(load)` must build and run a simulation
/// (typically LDF, the feasibility-optimal reference) and return its
/// steady-state total deficiency. A load is ruled *feasible* when the
/// deficiency falls below `tol`.
///
/// Returns the largest feasible load found in `[lo, hi]` to within
/// `resolution`, or `None` if even `lo` is infeasible.
///
/// # Panics
///
/// Panics if `lo >= hi` or `resolution <= 0`.
///
/// # Example
///
/// ```
/// use rtmac_analysis::feasibility::boundary_search;
///
/// // A toy system that is feasible up to load 0.62.
/// let probe = |load: f64| if load <= 0.62 { 0.0 } else { (load - 0.62) * 10.0 };
/// let b = boundary_search(0.1, 1.0, 0.01, 0.05, probe).unwrap();
/// assert!((b - 0.62).abs() < 0.02);
/// ```
pub fn boundary_search<F>(lo: f64, hi: f64, resolution: f64, tol: f64, mut probe: F) -> Option<f64>
where
    F: FnMut(f64) -> f64,
{
    assert!(lo < hi, "search interval must be nonempty");
    assert!(resolution > 0.0, "resolution must be positive");
    if probe(lo) >= tol {
        return None;
    }
    let (mut lo, mut hi) = (lo, hi);
    if probe(hi) < tol {
        return Some(hi);
    }
    while hi - lo > resolution {
        let mid = 0.5 * (lo + hi);
        if probe(mid) < tol {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// Convenience: the paper's strict-feasibility probe (Definition 3) — is
/// `(1+alpha)·q` still under the workload bound for some `alpha > 0`?
/// Returns the largest inflation factor `1+alpha` allowed by the necessary
/// condition (values `≤ 1` mean not even `q` passes).
///
/// # Errors
///
/// Same as [`workload_utilization`].
pub fn max_inflation(q: &[f64], p: &[f64], budget: u64) -> Result<f64, ConfigError> {
    let u = workload_utilization(q, p, budget)?;
    if u == 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok(1.0 / u)
}

/// Expected number of transmission slots consumed when the links of a
/// subset are served one after another with retransmissions — each link
/// `i` needs `G_i ~ Geometric(p_i)` attempts — capped at the interval's
/// `budget` slots: `E[min(budget, Σ_i G_i)]`.
///
/// Computed exactly by convolving the geometric laws with all mass at or
/// beyond `budget` lumped together.
///
/// # Errors
///
/// Returns [`ConfigError`] for an empty subset, zero budget, or
/// out-of-range probabilities.
pub fn expected_busy_slots(p: &[f64], budget: u32) -> Result<f64, ConfigError> {
    if p.is_empty() {
        return Err(ConfigError::NoLinks);
    }
    if budget == 0 {
        return Err(ConfigError::InvalidParameter {
            name: "slot budget",
            value: 0.0,
        });
    }
    for (link, &pn) in p.iter().enumerate() {
        if !pn.is_finite() || pn <= 0.0 || pn > 1.0 {
            return Err(ConfigError::InvalidSuccessProbability { link, value: pn });
        }
    }
    let cap = budget as usize;
    // dist[s] = P(partial sum == s) for s < cap; tail = P(partial sum >= cap).
    let mut dist = vec![0.0f64; cap];
    let mut tail = 0.0f64;
    dist[0] = 1.0;
    for &pn in p {
        let mut next = vec![0.0f64; cap];
        let mut next_tail = tail; // already-overflowed mass stays overflowed
        for (s, &mass) in dist.iter().enumerate() {
            if mass == 0.0 {
                continue;
            }
            // Add G ~ Geometric(pn) on {1, 2, ...}.
            let mut q = 1.0; // P(G > j-1)
            for j in 1..=(cap - s) {
                let pj = q * pn; // P(G = j)
                let target = s + j;
                if target < cap {
                    next[target] += mass * pj;
                }
                q *= 1.0 - pn;
            }
            // Everything beyond cap - s lands in the tail, including the
            // exact-cap outcomes (they consume the full budget).
            let within: f64 = 1.0 - q; // P(G <= cap - s)
            let exact_cap_mass = if cap - s >= 1 {
                // P(G = cap - s) was not stored in `next` above when
                // target == cap; account for it in the tail.
                (1.0 - pn).powi((cap - s - 1) as i32) * pn
            } else {
                0.0
            };
            next_tail += mass * (1.0 - within) + mass * exact_cap_mass;
        }
        dist = next;
        tail = next_tail;
    }
    let mut expectation = tail * f64::from(budget);
    for (s, &mass) in dist.iter().enumerate() {
        expectation += mass * s as f64;
    }
    Ok(expectation)
}

/// A subset that certifies infeasibility, with both sides of its violated
/// condition.
#[derive(Debug, Clone, PartialEq)]
pub struct InfeasibleSubset {
    /// Zero-based link indices of the violating subset.
    pub links: Vec<usize>,
    /// Required expected slots `Σ q_n / p_n`.
    pub required: f64,
    /// Available expected slots `E[min(budget, Σ G_n)]`.
    pub available: f64,
}

/// The exact feasibility test for the classic one-packet-per-interval
/// setting (Hou–Borkar–Kumar): `q` is feasible iff for **every** subset
/// `S` of links,
///
/// ```text
/// Σ_{n∈S} q_n / p_n  ≤  E[min(budget, Σ_{n∈S} G_n)],   G_n ~ Geom(p_n).
/// ```
///
/// The left side is the expected slot demand of `S`; the right side is the
/// most slot-time any policy can devote to `S` in one interval. Returns
/// `Ok(None)` when feasible, `Ok(Some(subset))` with the worst violated
/// subset otherwise.
///
/// # Errors
///
/// Returns [`ConfigError`] for inconsistent lengths, more than 16 links
/// (2^N subsets are enumerated), zero budget, or out-of-range values.
pub fn exact_single_arrival_feasibility(
    q: &[f64],
    p: &[f64],
    budget: u32,
) -> Result<Option<InfeasibleSubset>, ConfigError> {
    if q.len() != p.len() {
        return Err(ConfigError::LengthMismatch {
            what: "success probabilities",
            expected: q.len(),
            actual: p.len(),
        });
    }
    if q.is_empty() {
        return Err(ConfigError::NoLinks);
    }
    if q.len() > 16 {
        return Err(ConfigError::InvalidParameter {
            name: "links (subset enumeration capped at 16)",
            value: q.len() as f64,
        });
    }
    for (link, &qn) in q.iter().enumerate() {
        if !qn.is_finite() || !(0.0..=1.0).contains(&qn) {
            return Err(ConfigError::InvalidRequirement { link, value: qn });
        }
    }
    let n = q.len();
    let mut worst: Option<InfeasibleSubset> = None;
    for mask in 1u32..(1 << n) {
        let links: Vec<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
        let subset_p: Vec<f64> = links.iter().map(|&i| p[i]).collect();
        let required: f64 = links.iter().map(|&i| q[i] / p[i]).sum();
        let available = expected_busy_slots(&subset_p, budget)?;
        if required > available + 1e-12 {
            let gap = required - available;
            let replace = worst
                .as_ref()
                .is_none_or(|w| gap > w.required - w.available);
            if replace {
                worst = Some(InfeasibleSubset {
                    links,
                    required,
                    available,
                });
            }
        }
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_formula() {
        let u = workload_utilization(&[1.0, 2.0], &[0.5, 1.0], 8).unwrap();
        // 1/0.5 + 2/1 = 4; 4/8 = 0.5
        assert!((u - 0.5).abs() < 1e-12);
    }

    #[test]
    fn utilization_validates() {
        assert!(workload_utilization(&[1.0], &[0.5, 0.5], 8).is_err());
        assert!(workload_utilization(&[1.0], &[0.0], 8).is_err());
        assert!(workload_utilization(&[-1.0], &[0.5], 8).is_err());
        assert!(workload_utilization(&[1.0], &[0.5], 0).is_err());
    }

    #[test]
    fn paper_video_setting_knee_is_near_alpha_062() {
        // Workload bound for Fig. 3: q(α) = 0.9·3.5·α per link × 20 links,
        // p = 0.7, 60 transmissions. Utilization hits 1 at
        // α = 60·0.7 / (20·0.9·3.5) = 2/3 — slightly above the empirical
        // 0.62 knee, as expected for a necessary-only bound.
        let alpha_at_one: f64 = 60.0 * 0.7 / (20.0 * 0.9 * 3.5);
        assert!((alpha_at_one - 2.0 / 3.0).abs() < 1e-12);
        let q = vec![0.9 * 3.5 * 0.62; 20];
        let u = workload_utilization(&q, &[0.7; 20], 60).unwrap();
        assert!(u < 1.0 && u > 0.85, "u = {u}");
    }

    #[test]
    fn bisection_finds_boundary() {
        let probe = |x: f64| if x <= 0.4 { 0.001 } else { 1.0 };
        let b = boundary_search(0.0, 1.0, 1e-3, 0.01, probe).unwrap();
        assert!((b - 0.4).abs() < 2e-3);
    }

    #[test]
    fn bisection_handles_all_feasible_and_all_infeasible() {
        assert_eq!(boundary_search(0.0, 1.0, 0.01, 0.5, |_| 0.0), Some(1.0));
        assert_eq!(boundary_search(0.1, 1.0, 0.01, 0.5, |_| 9.0), None);
    }

    #[test]
    fn expected_busy_slots_closed_forms() {
        // Reliable link: exactly one slot.
        assert!((expected_busy_slots(&[1.0], 10).unwrap() - 1.0).abs() < 1e-12);
        // One unreliable link, generous budget: E[G] = 1/p.
        let e = expected_busy_slots(&[0.5], 200).unwrap();
        assert!((e - 2.0).abs() < 1e-9, "E = {e}");
        // Budget of 1: min(1, G) = 1 always.
        assert!((expected_busy_slots(&[0.3], 1).unwrap() - 1.0).abs() < 1e-12);
        // Two reliable links, budget 1: min(1, 2) = 1.
        assert!((expected_busy_slots(&[1.0, 1.0], 1).unwrap() - 1.0).abs() < 1e-12);
        // E[min(2, G)] for p = 0.5: 1·0.5 + 2·0.5 = 1.5.
        assert!((expected_busy_slots(&[0.5], 2).unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn expected_busy_slots_monotone_in_links_and_budget() {
        let one = expected_busy_slots(&[0.6], 8).unwrap();
        let two = expected_busy_slots(&[0.6, 0.6], 8).unwrap();
        assert!(two > one);
        let tight = expected_busy_slots(&[0.6, 0.6], 3).unwrap();
        assert!(tight < two);
        assert!(tight <= 3.0);
    }

    #[test]
    fn exact_feasibility_accepts_and_rejects() {
        // 2 links, p = 1, budget 2: q = (1, 1) exactly feasible.
        assert_eq!(
            exact_single_arrival_feasibility(&[1.0, 1.0], &[1.0, 1.0], 2).unwrap(),
            None
        );
        // Budget 1 cannot serve both.
        let bad = exact_single_arrival_feasibility(&[1.0, 1.0], &[1.0, 1.0], 1)
            .unwrap()
            .expect("must be infeasible");
        assert_eq!(bad.links, [0, 1]);
        assert!((bad.required - 2.0).abs() < 1e-12);
        assert!((bad.available - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exact_feasibility_catches_single_link_violations() {
        // One weak link alone violates: q/p = 0.95/0.3 > E[min(3, G)].
        let e1 = expected_busy_slots(&[0.3], 3).unwrap();
        assert!(0.95 / 0.3 > e1);
        let bad = exact_single_arrival_feasibility(&[0.95, 0.1], &[0.3, 0.9], 3)
            .unwrap()
            .expect("infeasible");
        assert_eq!(bad.links, [0]);
    }

    #[test]
    fn exact_feasibility_boundary_matches_simple_analytics() {
        // Symmetric 2-link, p = 0.5, budget 4:
        // full-set condition: 2q/0.5 <= E[min(4, G1+G2)].
        let avail = expected_busy_slots(&[0.5, 0.5], 4).unwrap();
        let q_max_full = avail * 0.5 / 2.0;
        // single-link condition: q/0.5 <= E[min(4, G)] = 2·(1−0.5^4)... compute:
        let avail1 = expected_busy_slots(&[0.5], 4).unwrap();
        let q_max_single = avail1 * 0.5;
        let q_boundary = q_max_full.min(q_max_single);
        // Just inside is feasible, just outside is not.
        assert!(
            exact_single_arrival_feasibility(&[q_boundary - 1e-6; 2], &[0.5; 2], 4)
                .unwrap()
                .is_none()
        );
        assert!(
            exact_single_arrival_feasibility(&[q_boundary + 1e-3; 2], &[0.5; 2], 4)
                .unwrap()
                .is_some()
        );
    }

    #[test]
    fn exact_feasibility_validation() {
        assert!(exact_single_arrival_feasibility(&[], &[], 4).is_err());
        assert!(exact_single_arrival_feasibility(&[0.5], &[0.5, 0.5], 4).is_err());
        assert!(exact_single_arrival_feasibility(&[1.5], &[0.5], 4).is_err());
        assert!(exact_single_arrival_feasibility(&[0.5; 17], &[0.5; 17], 4).is_err());
        assert!(expected_busy_slots(&[], 4).is_err());
        assert!(expected_busy_slots(&[0.5], 0).is_err());
    }

    #[test]
    fn max_inflation_inverts_utilization() {
        let f = max_inflation(&[1.0], &[1.0], 4).unwrap();
        assert!((f - 4.0).abs() < 1e-12);
        assert_eq!(max_inflation(&[0.0], &[1.0], 4).unwrap(), f64::INFINITY);
    }
}
