//! The batched DP interval kernel: a massive-N reformulation of
//! [`DpEngine`](crate::DpEngine) that steps one interval in
//! `O(min(N, deadline/slot))` work instead of `O(N × boundaries)`.
//!
//! # Why the timeline engine is O(N × B)
//!
//! The timeline engine replays every slot boundary: at each of up to
//! `B ≈ deadline/slot` boundaries it decrements all `N` backoff counters
//! and scans for links whose counter reached zero. At `N = 10 000` video
//! links that is ~2.2 × 10⁷ counter touches per interval, even though at
//! most `⌊deadline/airtime⌋ ≈ 61` links ever transmit.
//!
//! # The batched reformulation
//!
//! Eq. 6 makes the backoff counters *deterministic in the priority order*:
//! a non-candidate with priority `s` starts at counter
//! `(s − 1) + 2·|{pairs with C + 1 < s}|`, and the two members of swap pair
//! `j` (upper priority `C`) occupy counters in `[C − 1 + 2j, C + 2 + 2j]`
//! depending only on their private coins. Three structural facts follow:
//!
//! 1. **All counters are distinct** and a link with initial counter `c`
//!    acts at slot boundary `k = c` (counters decrement once per processed
//!    boundary after the first). Walking links in priority order — with a
//!    local two-element sort inside each pair block — visits them in
//!    strictly increasing counter order. No per-boundary scan is needed.
//! 2. **Idle gaps collapse**: between two consecutive actors the interval
//!    advances by whole idle slots, so the walk jumps `gap` boundaries in
//!    O(1) arithmetic (bounded by `⌈(deadline − t)/slot⌉` so the
//!    deadline-stop boundary is exact).
//! 3. **Carrier-sense checks become bitset lookups**: "busy at boundary
//!    `k`" means "a transmission starts at `k`", so the walk records each
//!    transmission boundary in a [`SenseBoard`] and the Eq. 7/8 checks
//!    (counter-at-1, i.e. boundary `initial − 1`) and the Remark-4 concede
//!    check (boundary after a claim that did not fit) are resolved *after*
//!    the walk as O(1) queries, guarded by the processed bound `B` (a
//!    boundary the timeline never processed means "check never ran").
//!
//! The kernel consumes the RNG in exactly the timeline order — shared
//! candidate draw, per-pair coins in candidate order, channel attempts in
//! counter order — so [`BatchedDpEngine::step`] reproduces
//! [`DpEngine::run_interval`](crate::DpEngine::run_interval) bit-for-bit:
//! same [`DpIntervalReport`], same σ evolution, same RNG stream position.
//! The equivalence is pinned by proptest + golden tests in
//! `tests/batched_equivalence.rs`.
//!
//! # Allocation discipline
//!
//! All working storage — the struct-of-arrays [`DpState`], the claim
//! board, the reused [`DpIntervalReport`] — is owned by the engine; after
//! a warm-up interval the hot path performs **zero heap allocations**
//! (pinned by `tests/alloc_regression.rs` with a counting allocator).
//! Trace mode is the documented exception: it buffers and sorts events and
//! is meant for debugging, not the hot path.
//!
//! # Documented divergences from the timeline engine
//!
//! * `mu` values of non-candidate links are range-checked only in debug
//!   builds (the timeline asserts all `N` per interval, which would be the
//!   dominant cost at `N = 10 000`). The two candidate links' values are
//!   asserted in all builds; no RNG draw depends on the difference.
//! * The defensive multi-transmitter collision path of the timeline
//!   (unreachable for a correct DP construction) has no batched
//!   counterpart; distinct counters are asserted in debug builds instead.

use rand::Rng;
use rtmac_model::{AdjacentTransposition, LinkId, Permutation};
use rtmac_phy::channel::LossModel;
use rtmac_phy::{Medium, SenseBoard};
use rtmac_sim::{Nanos, SimRng};

use crate::dp::{
    draw_nonadjacent_candidates_into, DpConfig, DpIntervalReport, FrameKind, TraceEvent,
};
use crate::{IntervalOutcome, MacTiming};

/// Sentinel for "no concede check armed" in [`DpState::pair_concede_at`].
const UNARMED: u64 = u64::MAX;

/// Flat struct-of-arrays interval state, owned by the engine so the hot
/// loop never allocates. Replaces the timeline engine's per-link
/// `counter`/`role`/`done` vectors: per-pair facts live in parallel arrays
/// indexed by pair, per-link facts are derived on the fly from the
/// priority walk.
#[derive(Debug, Clone, Default)]
struct DpState {
    /// Upper priority `C` of pair `j` (sorted, pairwise non-adjacent).
    pair_c: Vec<usize>,
    /// Link index holding priority `C`.
    pair_hi: Vec<usize>,
    /// Link index holding priority `C + 1`.
    pair_lo: Vec<usize>,
    /// Initial backoff counter of the hi member (Eq. 6).
    pair_hi_counter: Vec<u64>,
    /// Initial backoff counter of the lo member (Eq. 6).
    pair_lo_counter: Vec<u64>,
    /// `ξ_hi = −1`: hi wants to move down.
    pair_hi_wants_down: Vec<bool>,
    /// `ξ_lo = +1`: lo wants to move up.
    pair_lo_wants_up: Vec<bool>,
    /// lo actually began a transmission (Eq. 9's `R_i + R_j ≥ 1`).
    pair_lo_transmitted: Vec<bool>,
    /// Boundary whose busy bit decides hi's Remark-4 concede ([`UNARMED`]
    /// when hi's claim fitted or hi wanted down anyway).
    pair_concede_at: Vec<u64>,
    /// Bit-per-boundary transmission-start record.
    board: SenseBoard,
    /// The drawn candidate set (reused buffer).
    candidates: Vec<usize>,
    /// Shuffle scratch for the stars-and-bars candidate draw.
    draw_pool: Vec<usize>,
    /// Links whose per-link outcome entries were written this interval;
    /// clearing only these keeps the reset O(transmitters), not O(N).
    touched: Vec<usize>,
    /// Trace mode only: events keyed by (boundary, within-boundary seq)
    /// for the post-walk merge into timeline order.
    trace_tmp: Vec<(u64, u32, TraceEvent)>,
    /// Trace mode only: start time of every processed boundary.
    boundary_times: Vec<Nanos>,
    /// Debug-postcondition scratch (σ bijection check without `vec!`).
    seen: Vec<bool>,
}

/// What happened at a claimant's action boundary.
enum Claim {
    /// The deadline was reached before the claimant acted.
    Stopped,
    /// Nothing to send (no data, no pending empty claim); idle boundary.
    Idle,
    /// The frame no longer fit before the deadline (Remark 4).
    NoFit,
    /// A transmission started at the claimant's boundary.
    Transmitted,
}

/// The walking state of one interval: current time, next unprocessed
/// boundary, and the sinks the walk writes into.
struct Walk<'a> {
    timing: &'a MacTiming,
    slot: Nanos,
    deadline: Nanos,
    arrivals: &'a [u32],
    channel: &'a mut dyn LossModel,
    rng: &'a mut SimRng,
    board: &'a mut SenseBoard,
    outcome: &'a mut IntervalOutcome,
    touched: &'a mut Vec<usize>,
    trace: Option<TraceRec<'a>>,
    medium: Medium,
    t: Nanos,
    next_boundary: u64,
    stopped: bool,
}

/// Trace-mode sinks (separate struct so the hot path carries one `Option`).
struct TraceRec<'a> {
    events: &'a mut Vec<(u64, u32, TraceEvent)>,
    times: &'a mut Vec<Nanos>,
}

impl Walk<'_> {
    /// Processes `count` idle boundaries: one idle slot each.
    fn advance_idle(&mut self, count: u64) {
        if let Some(tr) = &mut self.trace {
            for i in 0..count {
                tr.times.push(self.t + self.slot * i);
            }
        }
        self.outcome.idle_slots += count;
        self.t += self.slot * count;
        self.next_boundary += count;
    }

    /// Processes the current boundary as idle (claimant had nothing to
    /// send, or its frame did not fit).
    fn idle_boundary(&mut self) {
        self.advance_idle(1);
    }

    /// Advances to boundary `counter` and lets `link` act there.
    ///
    /// `pending_empty` mirrors the timeline's Step-2 flag: the link is a
    /// swap candidate with no arrivals, so it claims its backoff slot with
    /// an empty frame.
    fn claim(&mut self, link: usize, counter: u64, pending_empty: bool) -> Claim {
        debug_assert!(!self.stopped, "claim after deadline stop");
        debug_assert!(
            counter >= self.next_boundary,
            "claimants must arrive in counter order"
        );
        // Timeline loop head: a boundary where t >= deadline is never
        // processed.
        if self.t >= self.deadline {
            self.stopped = true;
            return Claim::Stopped;
        }
        // Idle gap: every boundary strictly before `counter` belongs to no
        // remaining claimant, so each processed one adds exactly one idle
        // slot. `m` is how many boundaries fit before the deadline
        // (t + (m−1)·slot < deadline ≤ t + m·slot), so the stop boundary
        // lands exactly where the timeline loop would break.
        let gap = counter - self.next_boundary;
        let remaining = self.deadline - self.t;
        let m = remaining / self.slot + u64::from(!(remaining % self.slot).is_zero());
        if gap >= m {
            self.advance_idle(m);
            self.stopped = true;
            return Claim::Stopped;
        }
        self.advance_idle(gap);
        // Boundary `counter` is processed (t < deadline holds because
        // gap ≤ m − 1).
        let has_data = self.arrivals[link] > 0;
        if !has_data && !pending_empty {
            self.idle_boundary();
            return Claim::Idle;
        }
        let airtime = if has_data {
            self.timing.data_airtime_for(link)
        } else {
            self.timing.empty_airtime()
        };
        if !self.timing.fits(self.t, airtime) {
            // Remark 4: not enough time left — idle out the interval.
            self.idle_boundary();
            return Claim::NoFit;
        }

        // Transmission boundary: record the claim bit, then hold the
        // medium back-to-back exactly like the timeline Step 6.
        debug_assert!(
            !self.board.busy_at(counter as usize),
            "two claimants at boundary {counter}: DP counters must be distinct"
        );
        self.board.record_start(counter as usize);
        if let Some(tr) = &mut self.trace {
            tr.times.push(self.t);
        }
        let mut now = self.t;
        let mut seq: u32 = 1;
        if has_data {
            debug_assert!(!pending_empty, "pending empty claims require zero arrivals");
            let mut data = self.arrivals[link];
            self.touched.push(link);
            while data > 0 && self.timing.fits(now, airtime) {
                let tx = self.medium.transmit(now, &[airtime]);
                self.outcome.attempts[link] += 1;
                let delivered = self.channel.attempt(LinkId::new(link), self.rng);
                if delivered {
                    data -= 1;
                    self.outcome.deliveries[link] += 1;
                    self.outcome.latency_sum[link] += tx.ends_at;
                }
                if let Some(tr) = &mut self.trace {
                    tr.events.push((
                        counter,
                        seq,
                        TraceEvent::TxStart {
                            link: LinkId::new(link),
                            at: now,
                            kind: FrameKind::Data,
                        },
                    ));
                    tr.events.push((
                        counter,
                        seq + 1,
                        TraceEvent::TxEnd {
                            link: LinkId::new(link),
                            at: tx.ends_at,
                            delivered,
                        },
                    ));
                    seq += 2;
                }
                now = tx.ends_at;
            }
        } else {
            let tx = self.medium.transmit(now, &[airtime]);
            self.outcome.empty_packets += 1;
            if let Some(tr) = &mut self.trace {
                tr.events.push((
                    counter,
                    seq,
                    TraceEvent::TxStart {
                        link: LinkId::new(link),
                        at: now,
                        kind: FrameKind::Empty,
                    },
                ));
                tr.events.push((
                    counter,
                    seq + 1,
                    TraceEvent::TxEnd {
                        link: LinkId::new(link),
                        at: tx.ends_at,
                        delivered: false,
                    },
                ));
            }
            now = tx.ends_at;
        }
        self.t = now + self.slot; // one idle slot before the next boundary
        self.next_boundary = counter + 1;
        Claim::Transmitted
    }
}

/// The batched DP engine: drop-in for [`DpEngine`](crate::DpEngine) on the
/// stepping path, bit-identical results, `O(min(N, deadline/slot))` per
/// interval.
///
/// # Example
///
/// ```
/// use rtmac_mac::{BatchedDpEngine, DpConfig, DpEngine, MacTiming};
/// use rtmac_phy::channel::Bernoulli;
/// use rtmac_phy::PhyProfile;
/// use rtmac_sim::{Nanos, SeedStream};
///
/// let timing = MacTiming::new(PhyProfile::ieee80211a(), Nanos::from_millis(2), 100);
/// let config = DpConfig::new(timing);
/// let mut batched = BatchedDpEngine::new(config.clone(), 4);
/// let mut timeline = DpEngine::new(config, 4);
/// let arrivals = [1, 1, 1, 1];
/// let mu = [0.5; 4];
/// let (mut ch1, mut ch2) = (Bernoulli::reliable(4), Bernoulli::reliable(4));
/// let (mut r1, mut r2) = (SeedStream::new(7).rng(0), SeedStream::new(7).rng(0));
/// let fast = batched.step(&arrivals, &mu, &mut ch1, &mut r1).clone();
/// let slow = timeline.run_interval(&arrivals, &mu, &mut ch2, &mut r2);
/// assert_eq!(fast, slow);
/// ```
#[derive(Debug, Clone)]
pub struct BatchedDpEngine {
    config: DpConfig,
    sigma: Permutation,
    state: DpState,
    report: DpIntervalReport,
}

impl BatchedDpEngine {
    /// Creates an engine for `n_links` links with the identity priority
    /// ordering, pre-sizing every buffer so stepping never allocates.
    ///
    /// # Panics
    ///
    /// Panics if `n_links == 0`.
    #[must_use]
    pub fn new(config: DpConfig, n_links: usize) -> Self {
        let want = config.swap_pairs().min(n_links / 2);
        // The claim board covers every boundary the timeline could
        // process: it stops at the deadline after at most
        // `deadline/slot + 1` boundaries (each advances t by ≥ one slot)
        // and runs out of claimants after `max counter + 1 ≤ n + 2·want`
        // boundaries.
        let by_deadline = (config.timing().deadline() / config.timing().slot()) as usize + 2;
        let by_counters = n_links + 2 * want + 2;
        let horizon = by_deadline.min(by_counters);
        let mut state = DpState {
            board: SenseBoard::new(horizon),
            ..DpState::default()
        };
        state.pair_c.reserve(want);
        state.pair_hi.reserve(want);
        state.pair_lo.reserve(want);
        state.pair_hi_counter.reserve(want);
        state.pair_lo_counter.reserve(want);
        state.pair_hi_wants_down.reserve(want);
        state.pair_lo_wants_up.reserve(want);
        state.pair_lo_transmitted.reserve(want);
        state.pair_concede_at.reserve(want);
        state.candidates.reserve(want);
        if want > 1 {
            state.draw_pool.reserve(n_links);
        }
        state.touched.reserve(n_links.min(horizon));
        state.seen.resize(n_links, false);
        BatchedDpEngine {
            config,
            sigma: Permutation::identity(n_links),
            state,
            report: DpIntervalReport {
                outcome: IntervalOutcome::empty(n_links),
                candidates: Vec::with_capacity(want),
                swaps: Vec::with_capacity(want),
                trace: Vec::new(),
            },
        }
    }

    /// The current priority permutation `σ(k−1)`.
    #[must_use]
    pub fn sigma(&self) -> &Permutation {
        &self.sigma
    }

    /// Overrides the priority permutation.
    ///
    /// # Panics
    ///
    /// Panics if the permutation size differs from the engine's link count.
    pub fn set_sigma(&mut self, sigma: Permutation) {
        assert_eq!(
            sigma.len(),
            self.sigma.len(),
            "permutation size must match link count"
        );
        self.sigma = sigma;
    }

    /// Number of links.
    #[must_use]
    pub fn n_links(&self) -> usize {
        self.sigma.len()
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &DpConfig {
        &self.config
    }

    /// Runs one interval, drawing the shared candidate set internally —
    /// the batched counterpart of
    /// [`DpEngine::run_interval`](crate::DpEngine::run_interval). The
    /// returned report is an engine-owned buffer, valid until the next
    /// step; clone it to keep it.
    ///
    /// # Panics
    ///
    /// Panics if `arrivals`, `mu`, or the channel's link count disagree
    /// with the engine's, or (candidate links always, every link in debug
    /// builds) if some `μ_n ∉ (0, 1)`.
    pub fn step(
        &mut self,
        arrivals: &[u32],
        mu: &[f64],
        channel: &mut dyn LossModel,
        rng: &mut SimRng,
    ) -> &DpIntervalReport {
        self.run(arrivals, mu, None, channel, rng)
    }

    /// Runs one interval with an injected candidate set (sorted upper
    /// priorities, pairwise non-adjacent) — the batched counterpart of
    /// [`DpEngine::run_interval_with_candidates`](crate::DpEngine::run_interval_with_candidates).
    ///
    /// # Panics
    ///
    /// Same as [`BatchedDpEngine::step`], plus a panic if the candidate
    /// set is malformed.
    pub fn step_with_candidates(
        &mut self,
        arrivals: &[u32],
        mu: &[f64],
        candidates: &[usize],
        channel: &mut dyn LossModel,
        rng: &mut SimRng,
    ) -> &DpIntervalReport {
        self.run(arrivals, mu, Some(candidates), channel, rng)
    }

    /// The shared interval body.
    #[allow(clippy::too_many_lines)] // one interval, one function: the walk,
                                     // the sense resolution, and the commit are a single documented unit.
    fn run(
        &mut self,
        arrivals: &[u32],
        mu: &[f64],
        inject: Option<&[usize]>,
        channel: &mut dyn LossModel,
        rng: &mut SimRng,
    ) -> &DpIntervalReport {
        let n = self.sigma.len();
        assert_eq!(arrivals.len(), n, "arrivals must have one entry per link");
        assert_eq!(channel.n_links(), n, "channel link count mismatch");
        assert_eq!(mu.len(), n, "mu must have one entry per link");
        #[cfg(debug_assertions)]
        for (i, &m) in mu.iter().enumerate() {
            debug_assert!(m > 0.0 && m < 1.0, "mu[{i}] = {m} must lie in (0, 1)");
        }

        let Self {
            config,
            sigma,
            state,
            report,
        } = self;
        let timing = config.timing();
        let tracing = config.trace();
        let DpState {
            pair_c,
            pair_hi,
            pair_lo,
            pair_hi_counter,
            pair_lo_counter,
            pair_hi_wants_down,
            pair_lo_wants_up,
            pair_lo_transmitted,
            pair_concede_at,
            board,
            candidates,
            draw_pool,
            touched,
            trace_tmp,
            boundary_times,
            seen,
        } = state;

        // ------------------------------------------------------ reset
        for &l in touched.iter() {
            report.outcome.deliveries[l] = 0;
            report.outcome.attempts[l] = 0;
            report.outcome.latency_sum[l] = Nanos::ZERO;
        }
        touched.clear();
        report.outcome.empty_packets = 0;
        report.outcome.collisions = 0;
        report.outcome.busy_time = Nanos::ZERO;
        report.outcome.idle_slots = 0;
        report.outcome.leftover = Nanos::ZERO;
        report.candidates.clear();
        report.swaps.clear();
        report.trace.clear();
        board.reset();
        trace_tmp.clear();
        boundary_times.clear();

        // ------------------------------------- Step 1: candidate draw
        match inject {
            Some(c) => {
                candidates.clear();
                candidates.extend_from_slice(c);
            }
            None => {
                draw_nonadjacent_candidates_into(n, config.swap_pairs(), rng, candidates, draw_pool)
            }
        }
        for (i, &c) in candidates.iter().enumerate() {
            assert!(c >= 1 && c < n, "candidate priority {c} out of range");
            if i > 0 {
                assert!(
                    c >= candidates[i - 1] + 2,
                    "candidates must be sorted and non-adjacent"
                );
            }
        }
        report.candidates.extend_from_slice(candidates);

        // ------------------ Steps 2–4: coins and counters, per pair.
        // Coins are drawn in candidate order, hi before lo — the exact
        // timeline RNG sequence.
        pair_c.clear();
        pair_hi.clear();
        pair_lo.clear();
        pair_hi_counter.clear();
        pair_lo_counter.clear();
        pair_hi_wants_down.clear();
        pair_lo_wants_up.clear();
        pair_lo_transmitted.clear();
        pair_concede_at.clear();
        for (j, &c) in candidates.iter().enumerate() {
            let hi = sigma.link_with_priority(c).index();
            let lo = sigma.link_with_priority(c + 1).index();
            for link in [hi, lo] {
                let m = mu[link];
                assert!(m > 0.0 && m < 1.0, "mu[{link}] = {m} must lie in (0, 1)");
            }
            let xi_hi_up = rng.random_bool(mu[hi]);
            let xi_lo_up = rng.random_bool(mu[lo]);
            let hi_wants_down = !xi_hi_up;
            let lo_wants_up = xi_lo_up;
            let off = 2 * j as u64;
            // Eq. 6: counter = σ_n − ξ (+ 2 per completed earlier pair).
            let hi_counter = if hi_wants_down {
                c as u64 + 1 + off
            } else {
                c as u64 - 1 + off
            };
            let lo_counter = if lo_wants_up {
                c as u64 + off
            } else {
                c as u64 + 2 + off
            };
            pair_c.push(c);
            pair_hi.push(hi);
            pair_lo.push(lo);
            pair_hi_counter.push(hi_counter);
            pair_lo_counter.push(lo_counter);
            pair_hi_wants_down.push(hi_wants_down);
            pair_lo_wants_up.push(lo_wants_up);
            pair_lo_transmitted.push(false);
            pair_concede_at.push(UNARMED);
        }
        let n_pairs = pair_c.len();

        // Trace mode: the timeline emits every link's BackoffSet in link
        // order before the loop. O(N · pairs) here is fine — trace mode is
        // explicitly off the hot path.
        if tracing {
            for link in 0..n {
                let sigma_n = sigma.priority_of(LinkId::new(link));
                let mut counter = None;
                for j in 0..n_pairs {
                    if pair_hi[j] == link {
                        counter = Some(pair_hi_counter[j]);
                    } else if pair_lo[j] == link {
                        counter = Some(pair_lo_counter[j]);
                    }
                }
                let counter = match counter {
                    Some(c) => c,
                    None => {
                        let pairs_above =
                            pair_c.iter().filter(|&&c| c + 1 < sigma_n).count() as u64;
                        (sigma_n as u64 - 1) + 2 * pairs_above
                    }
                };
                report.trace.push(TraceEvent::BackoffSet {
                    link: LinkId::new(link),
                    counter,
                });
            }
        }

        // --------------------- Phase 1: the priority walk (Steps 4/6).
        // Claimants are visited in strictly increasing counter order: the
        // priority sweep 1..=N, with the two members of each pair block
        // locally ordered by counter (pair j's counters lie strictly
        // between its neighbours' — see the module docs).
        let mut walk = Walk {
            timing,
            slot: timing.slot(),
            deadline: timing.deadline(),
            arrivals,
            channel,
            rng,
            board,
            outcome: &mut report.outcome,
            touched,
            trace: if tracing {
                Some(TraceRec {
                    events: trace_tmp,
                    times: boundary_times,
                })
            } else {
                None
            },
            medium: Medium::new(),
            t: Nanos::ZERO,
            next_boundary: 0,
            stopped: false,
        };
        let mut pair_idx = 0usize;
        let mut p = 1usize;
        'walk: while p <= n {
            if pair_idx < n_pairs && pair_c[pair_idx] == p {
                let j = pair_idx;
                let hi_first = pair_hi_counter[j] < pair_lo_counter[j];
                for step in 0..2 {
                    let is_hi = (step == 0) == hi_first;
                    let (link, counter) = if is_hi {
                        (pair_hi[j], pair_hi_counter[j])
                    } else {
                        (pair_lo[j], pair_lo_counter[j])
                    };
                    // Step 2: a candidate with no arrivals claims its
                    // backoff slot with an empty frame.
                    let pending_empty = arrivals[link] == 0;
                    match walk.claim(link, counter, pending_empty) {
                        Claim::Stopped => break 'walk,
                        Claim::Transmitted => {
                            if !is_hi {
                                pair_lo_transmitted[j] = true;
                            }
                        }
                        Claim::NoFit => {
                            // Remark 4: a *staying* hi whose claim no
                            // longer fits concedes iff a transmission
                            // starts at exactly the next boundary.
                            if is_hi && !pair_hi_wants_down[j] {
                                pair_concede_at[j] = counter + 1;
                            }
                        }
                        Claim::Idle => {}
                    }
                }
                p += 2;
                pair_idx += 1;
            } else {
                let link = sigma.link_with_priority(p).index();
                let counter = (p as u64 - 1) + 2 * pair_idx as u64;
                if let Claim::Stopped = walk.claim(link, counter, false) {
                    break 'walk;
                }
                p += 1;
            }
        }
        // The first boundary the timeline would *not* process: either the
        // deadline-stop boundary or `max counter + 1` once every claimant
        // acted. Sense checks at boundaries ≥ b_end never ran.
        let b_end = walk.next_boundary;
        let medium_collisions = walk.medium.stats().collisions;
        let medium_busy_time = walk.medium.stats().busy_time;
        let medium_busy_until = walk.medium.busy_until();
        report.outcome.collisions += medium_collisions;
        report.outcome.busy_time = medium_busy_time;
        report.outcome.leftover = timing.deadline().saturating_sub(medium_busy_until);
        if tracing {
            debug_assert_eq!(
                boundary_times.len() as u64,
                b_end,
                "one recorded time per processed boundary"
            );
        }

        // ------- Phase 2: bitset sense resolution + commit (Steps 5/7).
        for j in 0..n_pairs {
            let mut hi_busy_at_1 = false;
            let mut lo_idle_at_1 = false;
            if pair_hi_wants_down[j] {
                // Eq. 7: hi senses at the boundary where its counter
                // stands at 1, i.e. boundary `initial − 1`.
                let s = pair_hi_counter[j] - 1;
                if s < b_end {
                    let busy = board.busy_at(s as usize);
                    hi_busy_at_1 = busy;
                    if tracing {
                        trace_tmp.push((
                            s,
                            0,
                            TraceEvent::SenseCheck {
                                link: LinkId::new(pair_hi[j]),
                                at: boundary_times[s as usize],
                                busy,
                            },
                        ));
                    }
                }
            }
            if pair_lo_wants_up[j] {
                // Eq. 8: same construction for lo.
                let s = pair_lo_counter[j] - 1;
                if s < b_end {
                    let busy = board.busy_at(s as usize);
                    lo_idle_at_1 = !busy;
                    if tracing {
                        trace_tmp.push((
                            s,
                            0,
                            TraceEvent::SenseCheck {
                                link: LinkId::new(pair_lo[j]),
                                at: boundary_times[s as usize],
                                busy,
                            },
                        ));
                    }
                }
            }
            let ca = pair_concede_at[j];
            let hi_concede = ca != UNARMED && ca < b_end && board.busy_at(ca as usize);
            let hi_swaps = (pair_hi_wants_down[j] && hi_busy_at_1) || hi_concede;
            let lo_swaps = lo_idle_at_1 && pair_lo_wants_up[j] && pair_lo_transmitted[j];
            debug_assert_eq!(
                hi_swaps, lo_swaps,
                "swap handshake diverged for pair C = {} (σ = {})",
                pair_c[j], sigma
            );
            if hi_swaps && lo_swaps {
                let t = AdjacentTransposition::new(pair_c[j]);
                sigma.apply(t);
                report.swaps.push(t);
                if tracing {
                    trace_tmp.push((
                        u64::MAX,
                        j as u32,
                        TraceEvent::SwapCommitted { upper: pair_c[j] },
                    ));
                }
            }
        }

        // Trace mode: merge the out-of-order sense checks back into the
        // timeline's per-boundary emission order. Keys are unique (sense
        // boundaries are pairwise distinct; tx events use seq ≥ 1).
        if tracing {
            trace_tmp.sort_unstable_by_key(|&(b, s, _)| (b, s));
            report.trace.extend(trace_tmp.iter().map(|&(_, _, e)| e));
        }

        // Interval postconditions, mirroring the timeline's (debug only,
        // using engine-owned scratch instead of a fresh `vec!`).
        #[cfg(debug_assertions)]
        {
            seen.fill(false);
            for &p in sigma.priorities() {
                debug_assert!(
                    p >= 1 && p <= n && !seen[p - 1],
                    "σ is no longer a permutation after interval commit: {sigma}"
                );
                seen[p - 1] = true;
            }
            debug_assert!(
                report.swaps.len() <= report.candidates.len(),
                "more swaps committed ({}) than pairs drawn ({})",
                report.swaps.len(),
                report.candidates.len()
            );
            for w in report.swaps.windows(2) {
                debug_assert!(
                    w[0].upper() < w[1].upper(),
                    "a drawn pair committed two swaps (uppers {} and {})",
                    w[0].upper(),
                    w[1].upper()
                );
            }
            for t in report.swaps.iter() {
                debug_assert!(
                    report.candidates.contains(&t.upper()),
                    "committed swap at priority {} was never drawn as a candidate",
                    t.upper()
                );
            }
        }
        #[cfg(not(debug_assertions))]
        let _ = seen;

        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DpConfig, DpEngine};
    use rtmac_phy::channel::Bernoulli;
    use rtmac_phy::PhyProfile;
    use rtmac_sim::SeedStream;

    fn timing_ms(ms: u64, payload: u32) -> MacTiming {
        MacTiming::new(PhyProfile::ieee80211a(), Nanos::from_millis(ms), payload)
    }

    /// Drives both engines over `intervals` with identical inputs and
    /// asserts bit-identical reports and σ trajectories.
    fn assert_equivalent(config: DpConfig, n: usize, seed: u64, intervals: usize) {
        let mut fast = BatchedDpEngine::new(config.clone(), n);
        let mut slow = DpEngine::new(config, n);
        let mut ch_fast = Bernoulli::new(vec![0.8; n]).unwrap();
        let mut ch_slow = Bernoulli::new(vec![0.8; n]).unwrap();
        let seeds = SeedStream::new(seed);
        let mut rng_fast = seeds.rng(0);
        let mut rng_slow = seeds.rng(0);
        let mut arrival_rng = seeds.rng(1);
        let mut arrivals = vec![0u32; n];
        let mu = vec![0.5; n];
        for k in 0..intervals {
            for a in arrivals.iter_mut() {
                *a = arrival_rng.random_range(0..4);
            }
            let fast_report = fast
                .step(&arrivals, &mu, &mut ch_fast, &mut rng_fast)
                .clone();
            let slow_report = slow.run_interval(&arrivals, &mu, &mut ch_slow, &mut rng_slow);
            assert_eq!(fast_report, slow_report, "interval {k} diverged");
            assert_eq!(fast.sigma(), slow.sigma(), "sigma diverged at interval {k}");
        }
    }

    #[test]
    fn matches_timeline_on_default_config() {
        assert_equivalent(DpConfig::new(timing_ms(2, 100)), 6, 2018, 40);
    }

    #[test]
    fn matches_timeline_with_trace_and_multi_pair() {
        let config = DpConfig::new(timing_ms(2, 100))
            .with_swap_pairs(3)
            .with_trace(true);
        assert_equivalent(config, 10, 2018, 40);
    }

    #[test]
    fn matches_timeline_under_deadline_pressure() {
        // 200 µs deadline: data frames never fit, only empty claims do —
        // the Remark-4 concede path fires regularly.
        let timing = MacTiming::new(PhyProfile::ieee80211a(), Nanos::from_micros(200), 1500);
        assert_equivalent(DpConfig::new(timing).with_trace(true), 4, 7, 60);
    }

    #[test]
    fn single_link_runs() {
        let mut e = BatchedDpEngine::new(DpConfig::new(timing_ms(20, 1500)), 1);
        let mut ch = Bernoulli::reliable(1);
        let mut rng = SeedStream::new(3).rng(0);
        let report = e.step(&[5], &[0.5], &mut ch, &mut rng);
        assert_eq!(report.outcome.deliveries, [5]);
        assert!(report.candidates.is_empty());
    }

    #[test]
    fn report_buffer_resets_between_intervals() {
        let mut e = BatchedDpEngine::new(DpConfig::new(timing_ms(20, 1500)), 3);
        let mut ch = Bernoulli::reliable(3);
        let mut rng = SeedStream::new(4).rng(0);
        let first = e.step(&[2, 0, 1], &[0.5; 3], &mut ch, &mut rng).clone();
        assert_eq!(first.outcome.total_deliveries(), 3);
        // A later all-idle interval must not leak the previous counters.
        let second = e.step(&[0, 0, 0], &[0.5; 3], &mut ch, &mut rng);
        assert_eq!(second.outcome.total_deliveries(), 0);
        assert_eq!(second.outcome.total_attempts(), 0);
    }

    #[test]
    #[should_panic(expected = "must lie in (0, 1)")]
    fn candidate_mu_out_of_range_panics() {
        let mut e = BatchedDpEngine::new(DpConfig::new(timing_ms(2, 100)), 2);
        let mut ch = Bernoulli::reliable(2);
        let mut rng = SeedStream::new(5).rng(0);
        e.step_with_candidates(&[1, 1], &[1.5, 0.5], &[1], &mut ch, &mut rng);
    }
}
