//! Robustness beyond the paper's model: the DP protocol maintains
//! priorities through transmission *attempts*, not control packets, so it
//! keeps working when losses are bursty (Gilbert–Elliott) rather than
//! i.i.d. This example runs DB-DP over a two-state burst-loss channel with
//! the same long-run success probability as the paper's static model and
//! compares the outcome.
//!
//! ```sh
//! cargo run --release --example bursty_channel
//! ```

use rtmac::phy::channel::{GilbertElliott, GilbertElliottParams};
use rtmac::PolicySpec;
use rtmac_suite::scenarios;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let intervals = 8000;
    let rho = 0.9;

    // Static channel: p = 0.7 i.i.d. (the paper's model).
    let static_report = scenarios::control(10, 0.7, rho, 21)
        .with_policy(PolicySpec::db_dp())
        .with_intervals(intervals)
        .run()?;

    // Bursty channel with the same mean: good state p = 0.9, bad state
    // p = 0.1, stationary 75% good -> mean 0.7.
    let ge = GilbertElliottParams {
        p_good: 0.9,
        p_bad: 0.1,
        good_to_bad: 0.02,
        bad_to_good: 0.06,
    };
    assert!((ge.mean_success() - 0.7).abs() < 1e-12);
    // The declarative layer only describes i.i.d. channels, so the bursty
    // model attaches through the builder escape hatch.
    let mut bursty_net = scenarios::control(10, 0.7, rho, 21)
        .with_policy(PolicySpec::db_dp())
        .to_builder()
        .channel(Box::new(GilbertElliott::new(vec![ge; 10])?))
        .build()?;
    let bursty_report = bursty_net.run(intervals);

    println!("DB-DP over i.i.d. vs bursty losses (same mean p = 0.7):\n");
    println!(
        "{:>22} {:>12} {:>12}",
        "channel", "deficiency", "collisions"
    );
    println!(
        "{:>22} {:>12.4} {:>12}",
        "static Bernoulli", static_report.final_total_deficiency, static_report.collisions
    );
    println!(
        "{:>22} {:>12.4} {:>12}",
        "Gilbert-Elliott", bursty_report.final_total_deficiency, bursty_report.collisions
    );
    println!(
        "\nburstiness costs some timely-throughput (losses cluster inside \
         an interval, where retries burn the budget), but the protocol \
         never loses priority consistency: zero collisions either way."
    );
    Ok(())
}
