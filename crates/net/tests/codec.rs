//! Codec properties and byte goldens for the wire format.
//!
//! Two property suites and one set of fixed vectors:
//!
//! * every constructible [`Frame`] survives encode → decode unchanged;
//! * no byte buffer — random, truncated, or bit-flipped — makes the
//!   decoder panic: it returns a frame or a [`CodecError`], always;
//! * the exact byte layout of version 1 is pinned by golden vectors, so
//!   any change to the format must also change this file (and bump the
//!   wire version per DESIGN.md §15).
//!
//! The vendored proptest has no `prop_map`/`prop_oneof`, so frames are
//! built from raw numeric dimensions inside each property body.

use proptest::prelude::*;
use rtmac_net::{Activity, Beacon, CodecError, Frame, FrameKind};

/// Builds one of the four frame kinds from flat numeric dimensions.
/// `kind` 0 maps to a beacon (reinterpreting the first five dimensions);
/// 1..=3 map to the activity kinds.
#[allow(clippy::cast_possible_truncation, clippy::too_many_arguments)]
fn build_frame(kind: u8, d0: u64, d1: u64, d2: u64, d3: u64, d4: u64, d5: u64, d6: u64) -> Frame {
    if kind == 0 {
        return Frame::Beacon(Beacon {
            link: d0 as u32,
            links: d1 as u32,
            seed: d2,
            intervals: d3,
            config_digest: d4,
        });
    }
    let body = Activity {
        interval: d0,
        link: d1 as u32,
        rank: d2 as u32,
        backlog: d3 as u32,
        deliveries: d4 as u32,
        attempts: d5 as u32,
        state_digest: d6,
    };
    let kind = FrameKind::from_wire(kind).unwrap_or(FrameKind::Idle);
    Frame::from_activity(kind, body).unwrap_or(Frame::Idle(body))
}

proptest! {
    #[test]
    fn every_frame_round_trips(
        kind in 0u8..=3,
        d0 in 0u64..=u64::MAX,
        d1 in 0u64..=u64::MAX,
        d2 in 0u64..=u64::MAX,
        d3 in 0u64..=u64::MAX,
        d4 in 0u64..=u64::MAX,
        d5 in 0u64..=u64::MAX,
        d6 in 0u64..=u64::MAX,
    ) {
        let frame = build_frame(kind, d0, d1, d2, d3, d4, d5, d6);
        let bytes = frame.encode();
        prop_assert_eq!(bytes.len(), frame.encoded_len());
        let decoded = Frame::decode(&bytes);
        prop_assert_eq!(decoded, Ok((frame, bytes.len())));
        prop_assert_eq!(Frame::decode_datagram(&bytes), Ok(frame));
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(
        bytes in proptest::collection::vec(0u8..=255, 0..128),
    ) {
        // Total decoding: any result is fine, panicking is not. The call
        // itself is the assertion.
        let _ = Frame::decode(&bytes);
        let _ = Frame::decode_datagram(&bytes);
    }

    #[test]
    fn every_strict_prefix_is_rejected_cleanly(
        kind in 0u8..=3,
        d0 in 0u64..=u64::MAX,
        d1 in 0u64..=u64::MAX,
        d2 in 0u64..=u64::MAX,
        cut_seed in 0usize..=usize::MAX,
    ) {
        let bytes = build_frame(kind, d0, d1, d2, d0, d1, d2, d0).encode();
        let cut = cut_seed % bytes.len(); // 0..len, never the full frame
        prop_assert!(matches!(
            Frame::decode(&bytes[..cut]),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn single_byte_corruption_never_panics(
        kind in 0u8..=3,
        d0 in 0u64..=u64::MAX,
        d1 in 0u64..=u64::MAX,
        d2 in 0u64..=u64::MAX,
        at_seed in 0usize..=usize::MAX,
        flip in 1u8..=255,
    ) {
        let mut bytes = build_frame(kind, d0, d1, d2, d0, d1, d2, d0).encode();
        let at = at_seed % bytes.len();
        bytes[at] ^= flip;
        // A flipped body byte still decodes (to a different frame); a
        // flipped header byte errors. Either way: no panic, and a clean
        // decode must consume the whole buffer.
        if let Ok((_, consumed)) = Frame::decode(&bytes) {
            prop_assert_eq!(consumed, bytes.len());
        }
    }

    #[test]
    fn trailing_garbage_fails_datagrams_but_not_streams(
        kind in 0u8..=3,
        d0 in 0u64..=u64::MAX,
        d1 in 0u64..=u64::MAX,
        d2 in 0u64..=u64::MAX,
        extra in proptest::collection::vec(0u8..=255, 1..16),
    ) {
        let frame = build_frame(kind, d0, d1, d2, d0, d1, d2, d0);
        let mut bytes = frame.encode();
        let frame_len = bytes.len();
        bytes.extend_from_slice(&extra);
        prop_assert_eq!(
            Frame::decode_datagram(&bytes),
            Err(CodecError::TrailingBytes { extra: extra.len() })
        );
        // The stream decoder reads exactly one frame and reports where
        // the next one starts.
        prop_assert_eq!(Frame::decode(&bytes), Ok((frame, frame_len)));
    }
}

/// The version-1 beacon layout, byte for byte. Changing any of these
/// bytes is a wire-format break: bump the wire version and update
/// DESIGN.md §15 alongside this golden.
#[test]
fn beacon_golden_vector() {
    let frame = Frame::Beacon(Beacon {
        link: 2,
        links: 10,
        seed: 2018,
        intervals: 300,
        config_digest: 0x0123_4567_89AB_CDEF,
    });
    let expected: Vec<u8> = [
        vec![0x52, 0x4D], // magic "RM"
        vec![0x01],       // version 1
        vec![0x00],       // kind 0 = beacon
        vec![0x20, 0x00], // body length 32, u16 LE
        2u32.to_le_bytes().to_vec(),
        10u32.to_le_bytes().to_vec(),
        2018u64.to_le_bytes().to_vec(),
        300u64.to_le_bytes().to_vec(),
        0x0123_4567_89AB_CDEFu64.to_le_bytes().to_vec(),
    ]
    .concat();
    assert_eq!(frame.encode(), expected);
    assert_eq!(Frame::decode_datagram(&expected), Ok(frame));
}

/// The version-1 activity layout under all three kinds, byte for byte.
#[test]
fn activity_golden_vector() {
    let body = Activity {
        interval: 41,
        link: 3,
        rank: 1,
        backlog: 2,
        deliveries: 1,
        attempts: 2,
        state_digest: 0xFEDC_BA98_7654_3210,
    };
    let body_bytes: Vec<u8> = [
        41u64.to_le_bytes().to_vec(),
        3u32.to_le_bytes().to_vec(),
        1u32.to_le_bytes().to_vec(),
        2u32.to_le_bytes().to_vec(),
        1u32.to_le_bytes().to_vec(),
        2u32.to_le_bytes().to_vec(),
        0xFEDC_BA98_7654_3210u64.to_le_bytes().to_vec(),
    ]
    .concat();
    for (frame, kind_byte) in [
        (Frame::Claim(body), 0x01u8),
        (Frame::Busy(body), 0x02),
        (Frame::Idle(body), 0x03),
    ] {
        let expected: Vec<u8> = [
            vec![0x52, 0x4D, 0x01, kind_byte, 0x24, 0x00], // header; len 36
            body_bytes.clone(),
        ]
        .concat();
        assert_eq!(frame.encode(), expected);
        assert_eq!(Frame::decode_datagram(&expected), Ok(frame));
    }
}
