//! Shared mutation harness for the verify integration tests: the real
//! engine wrapped with one seeded fault, used by both the exhaustive
//! (`mutation.rs`) and statistical (`smc.rs`) conviction pipelines.
//!
//! Not every test crate uses every fault, so dead-code warnings are
//! silenced for this shared module.
#![allow(dead_code)]

use rtmac_mac::{
    DpConfig, DpEngine, DpIntervalReport, FrameKind, MacTiming, PairCoins, TraceEvent,
};
use rtmac_model::{AdjacentTransposition, Permutation};
use rtmac_phy::channel::LossModel;
use rtmac_sim::SimRng;
use rtmac_verify::{CheckConfig, Property, Subject};

/// The seeded faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Reports a collision that never happened.
    PhantomCollision,
    /// Credits link 0 with one extra delivery.
    DoubleCount,
    /// Applies an undrawn adjacent swap to σ without reporting it.
    SilentSwap,
    /// Reports (and applies) a swap at a pair that was never drawn.
    RogueSwap,
    /// Drops empty priority-claim frames from the trace.
    SuppressClaimTrace,
}

impl Fault {
    /// The property each fault must be convicted under.
    pub fn expected_property(self) -> Property {
        match self {
            Fault::PhantomCollision => Property::CollisionFreedom,
            Fault::DoubleCount => Property::ChannelConsistency,
            Fault::SilentSwap | Fault::RogueSwap => Property::SwapDiscipline,
            Fault::SuppressClaimTrace => Property::EmptyClaim,
        }
    }

    /// Swap faults need at least one undrawn pair, hence three links.
    pub fn config(self) -> CheckConfig {
        match self {
            Fault::SilentSwap | Fault::RogueSwap => CheckConfig::new(3, 1),
            _ => CheckConfig::new(2, 1),
        }
    }
}

/// The real engine wrapped with one seeded fault.
#[derive(Debug)]
pub struct FaultySubject {
    engine: DpEngine,
    fault: Fault,
}

impl FaultySubject {
    pub fn new(timing: MacTiming, n_links: usize, fault: Fault) -> Self {
        FaultySubject {
            engine: DpEngine::new(DpConfig::new(timing).with_trace(true), n_links),
            fault,
        }
    }

    pub fn for_config(cfg: &CheckConfig, fault: Fault) -> Self {
        FaultySubject::new(cfg.timing(), cfg.n, fault)
    }
}

impl Subject for FaultySubject {
    fn n_links(&self) -> usize {
        self.engine.n_links()
    }

    fn sigma(&self) -> &Permutation {
        self.engine.sigma()
    }

    fn set_sigma(&mut self, sigma: Permutation) {
        self.engine.set_sigma(sigma);
    }

    fn run_interval(
        &mut self,
        arrivals: &[u32],
        candidates: &[usize],
        coins: &[PairCoins],
        channel: &mut dyn LossModel,
        rng: &mut SimRng,
    ) -> DpIntervalReport {
        let mut report = self
            .engine
            .run_interval_with_coins(arrivals, candidates, coins, channel, rng);
        match self.fault {
            Fault::PhantomCollision => report.outcome.collisions += 1,
            Fault::DoubleCount => report.outcome.deliveries[0] += 1,
            Fault::SilentSwap => {
                let t = undrawn_swap(candidates);
                let mutated = self.engine.sigma().with(t);
                self.engine.set_sigma(mutated);
            }
            Fault::RogueSwap => {
                let t = undrawn_swap(candidates);
                let mutated = self.engine.sigma().with(t);
                self.engine.set_sigma(mutated);
                report.swaps.push(t);
            }
            Fault::SuppressClaimTrace => {
                report.trace.retain(|ev| {
                    !matches!(
                        ev,
                        TraceEvent::TxStart {
                            kind: FrameKind::Empty,
                            ..
                        }
                    )
                });
            }
        }
        report
    }
}

/// An adjacent pair that was not drawn this interval. The drawn set is
/// pairwise non-adjacent, so it can never contain both 1 and 2: whichever
/// of the two is absent is a legal undrawn swap (needs N ≥ 3).
pub fn undrawn_swap(candidates: &[usize]) -> AdjacentTransposition {
    let upper = if candidates.contains(&1) { 2 } else { 1 };
    AdjacentTransposition::new(upper)
}

/// A subject whose reordering is dead: it commits no swaps and pins σ to
/// whatever the checker set. Every per-interval safety property still
/// holds (σ changes by exactly the committed swaps — none), so only the
/// global sigma-liveness check can convict it.
#[derive(Debug)]
pub struct FrozenSigmaSubject {
    engine: DpEngine,
}

impl FrozenSigmaSubject {
    pub fn new(timing: MacTiming, n_links: usize) -> Self {
        FrozenSigmaSubject {
            engine: DpEngine::new(DpConfig::new(timing).with_trace(true), n_links),
        }
    }
}

impl Subject for FrozenSigmaSubject {
    fn n_links(&self) -> usize {
        self.engine.n_links()
    }

    fn sigma(&self) -> &Permutation {
        self.engine.sigma()
    }

    fn set_sigma(&mut self, sigma: Permutation) {
        self.engine.set_sigma(sigma);
    }

    fn run_interval(
        &mut self,
        arrivals: &[u32],
        candidates: &[usize],
        coins: &[PairCoins],
        channel: &mut dyn LossModel,
        rng: &mut SimRng,
    ) -> DpIntervalReport {
        let before = self.engine.sigma().clone();
        let mut report = self
            .engine
            .run_interval_with_coins(arrivals, candidates, coins, channel, rng);
        report.swaps.clear();
        self.engine.set_sigma(before);
        report
    }
}
