//! # rtmac-sim
//!
//! A small, deterministic discrete-event simulation kernel.
//!
//! This crate is the substrate underneath the wireless MAC simulators in the
//! `rtmac` workspace. It provides:
//!
//! * [`Nanos`] — a nanosecond-precision simulation time newtype with checked
//!   arithmetic and convenient constructors ([`Nanos::from_micros`],
//!   [`Nanos::from_millis`], ...).
//! * [`EventQueue`] — a stable priority queue of timed events. Events that
//!   share a timestamp are dequeued in insertion order, which makes
//!   simulations reproducible independent of heap internals.
//! * [`Simulator`] — a minimal event loop that owns a clock and an event
//!   queue and dispatches events to a user-supplied handler.
//! * [`SeedStream`] — a deterministic hierarchy of RNG seeds so independent
//!   stochastic components (channels, arrivals, coin flips, ...) each get
//!   their own reproducible stream.
//! * [`BitSet`] — a fixed-capacity, allocation-free-after-construction
//!   bitset used by the batched interval kernel's slot-boundary claim board.
//!
//! # Example
//!
//! ```
//! use rtmac_sim::{EventQueue, Nanos};
//!
//! let mut queue: EventQueue<&'static str> = EventQueue::new();
//! queue.schedule(Nanos::from_micros(9), "slot boundary");
//! queue.schedule(Nanos::ZERO, "interval start");
//! let (t, ev) = queue.pop().expect("queue is non-empty");
//! assert_eq!(t, Nanos::ZERO);
//! assert_eq!(ev, "interval start");
//! ```

mod bitset;
mod event;
mod rng;
mod simulator;
mod time;

pub use bitset::BitSet;
pub use event::EventQueue;
pub use rng::{rng_from_seed, SeedStream, SimRng};
pub use simulator::{SimControl, SimHandle, Simulator};
pub use time::Nanos;
