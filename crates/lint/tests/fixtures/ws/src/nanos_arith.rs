//! Fixture: raw arithmetic on unwrapped `Nanos`-style durations
//! (nanos-raw-arith).

pub struct Dur(u64);

impl Dur {
    pub fn as_nanos(&self) -> u64 {
        self.0
    }
}

pub fn violations(deadline: &Dur, elapsed: &Dur, slots: u64, total: &mut u64) {
    let _slack = deadline.as_nanos() - elapsed.as_nanos();
    let _pad = slots * deadline.as_nanos();
    *total += deadline.as_nanos();
}

pub fn fine(deadline: &Dur, budget: u64) -> u64 {
    let _widened = deadline.as_nanos() as u128 + 1;
    let _checked = deadline.as_nanos().checked_div(8);
    budget.min(deadline.as_nanos())
}
