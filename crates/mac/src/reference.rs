//! A reference implementation of the DP protocol, written from the
//! *device's* point of view.
//!
//! [`crate::DpEngine`] is written like a simulator: one loop with global
//! visibility of every counter. This module re-implements Algorithm 2 the
//! way a real radio would run it — each device is an isolated state
//! machine that sees only
//!
//! * its own arrivals, priority index, coin flip, and the shared draw
//!   `C(k)`,
//! * the carrier state at each slot boundary, and
//! * its own transmission completions,
//!
//! and the [`ReferenceNetwork`] driver merely delivers those observations
//! through an [`rtmac_sim::Simulator`] event loop. Differential tests in
//! this module (and in the workspace integration suite) drive both
//! implementations through identical arrivals, coin flips, and scripted
//! channel outcomes and require bit-identical behaviour — strong evidence
//! that the fast engine implements the *decentralized* protocol and not an
//! accidental centralized approximation of it.

use rtmac_model::{AdjacentTransposition, LinkId, Permutation};
use rtmac_phy::channel::LossModel;
use rtmac_phy::Medium;
use rtmac_sim::{Nanos, SimControl, SimRng, Simulator};

use crate::{FrameKind, IntervalOutcome, MacTiming};

/// The role a device plays in this interval's reordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// Not a swap candidate.
    Bystander,
    /// The candidate at priority `C` (may move down).
    Upper {
        /// Its coin: `true` = ξ = +1 (stay).
        stays: bool,
    },
    /// The candidate at priority `C + 1` (may move up).
    Lower {
        /// Its coin: `true` = ξ = +1 (move up).
        climbs: bool,
    },
}

/// What a device decides at the end of the interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapDecision {
    /// Keep the current priority.
    Stay,
    /// Move down one priority (upper candidate conceding or swapping).
    Down,
    /// Move up one priority (lower candidate winning the handshake).
    Up,
}

/// One radio: the per-device state machine of Algorithm 2.
#[derive(Debug)]
struct Device {
    counter: u64,
    data: u32,
    pending_empty: bool,
    done: bool,
    role: Role,
    // Carrier-sense handshake state.
    checked_at_1: bool,
    heard_busy_at_1: bool,
    heard_idle_at_1: bool,
    transmitted: bool,
    // Failed-claim concede (see `PairState` in dp.rs).
    concede_armed: bool,
    concede_arm_next: bool,
    concedes: bool,
    // Set while this device's counter stands at 1 for the current boundary,
    // so `observe` knows to run the sense check.
    at_one_now: bool,
}

impl Device {
    fn new(counter: u64, data: u32, pending_empty: bool, role: Role) -> Self {
        Device {
            counter,
            data,
            pending_empty,
            done: false,
            role,
            checked_at_1: false,
            heard_busy_at_1: false,
            heard_idle_at_1: false,
            transmitted: false,
            concede_armed: false,
            concede_arm_next: false,
            concedes: false,
            at_one_now: false,
        }
    }

    /// Next frame this device would send, if any.
    fn next_frame(&self) -> Option<FrameKind> {
        if self.data > 0 {
            Some(FrameKind::Data)
        } else if self.pending_empty {
            Some(FrameKind::Empty)
        } else {
            None
        }
    }

    /// Slot boundary: decrement (unless this is the interval start), then
    /// decide whether to start transmitting. Independent of every other
    /// device — the carrier observation arrives separately via
    /// [`Device::observe`].
    fn on_boundary(
        &mut self,
        first: bool,
        now: Nanos,
        timing: &MacTiming,
        me: usize,
    ) -> Option<FrameKind> {
        if self.done {
            return None;
        }
        if !first && self.counter > 0 {
            self.counter -= 1;
        }
        self.at_one_now = self.counter == 1;
        if self.counter != 0 {
            return None;
        }
        let Some(frame) = self.next_frame() else {
            self.done = true;
            return None;
        };
        let airtime = match frame {
            FrameKind::Data => timing.data_airtime_for(me),
            FrameKind::Empty => timing.empty_airtime(),
        };
        if timing.fits(now, airtime) {
            Some(frame)
        } else {
            // Remark 4: out of time. A staying upper candidate arms the
            // concede check for the next boundary.
            self.done = true;
            if let Role::Upper { stays: true } = self.role {
                self.concede_arm_next = true;
            }
            None
        }
    }

    /// Carrier observation for the boundary just decided: `busy` iff some
    /// transmission started at it.
    fn observe(&mut self, busy: bool) {
        if self.concede_armed {
            self.concedes = busy;
            self.concede_armed = false;
        }
        if self.concede_arm_next {
            self.concede_armed = true;
            self.concede_arm_next = false;
        }
        if self.at_one_now && !self.checked_at_1 && !self.done {
            match self.role {
                Role::Upper { stays: false } => {
                    self.checked_at_1 = true;
                    self.heard_busy_at_1 = busy;
                }
                Role::Lower { climbs: true } => {
                    self.checked_at_1 = true;
                    self.heard_idle_at_1 = !busy;
                }
                _ => {}
            }
        }
        self.at_one_now = false;
    }

    /// A transmission of this device just finished; decide whether the
    /// burst continues.
    fn on_tx_complete(
        &mut self,
        kind: FrameKind,
        delivered: bool,
        now: Nanos,
        timing: &MacTiming,
        me: usize,
    ) -> Option<FrameKind> {
        self.transmitted = true;
        match kind {
            FrameKind::Data => {
                if delivered {
                    self.data -= 1;
                }
            }
            FrameKind::Empty => self.pending_empty = false,
        }
        let Some(next) = self.next_frame() else {
            self.done = true;
            return None;
        };
        let airtime = match next {
            FrameKind::Data => timing.data_airtime_for(me),
            FrameKind::Empty => timing.empty_airtime(),
        };
        if timing.fits(now, airtime) {
            Some(next)
        } else {
            self.done = true;
            None
        }
    }

    /// End of interval: the device's local reordering decision (Step 5/7).
    fn decide(&self) -> SwapDecision {
        match self.role {
            Role::Bystander => SwapDecision::Stay,
            Role::Upper { stays } => {
                if (!stays && self.heard_busy_at_1) || self.concedes {
                    SwapDecision::Down
                } else {
                    SwapDecision::Stay
                }
            }
            Role::Lower { climbs } => {
                if climbs && self.heard_idle_at_1 && self.transmitted {
                    SwapDecision::Up
                } else {
                    SwapDecision::Stay
                }
            }
        }
    }
}

/// Events of the reference driver's simulator.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// An idle slot boundary (`first` marks the interval start, which does
    /// not decrement counters).
    Boundary { first: bool },
    /// A transmission episode completes.
    TxEnd {
        link: usize,
        kind: FrameKind,
        delivered: bool,
    },
}

/// The reference network: devices plus a driver that only relays carrier
/// observations.
#[derive(Debug)]
pub struct ReferenceNetwork {
    timing: MacTiming,
    sigma: Permutation,
}

impl ReferenceNetwork {
    /// Creates the network with the identity priority ordering.
    ///
    /// # Panics
    ///
    /// Panics if `n_links == 0`.
    #[must_use]
    pub fn new(timing: MacTiming, n_links: usize) -> Self {
        ReferenceNetwork {
            timing,
            sigma: Permutation::identity(n_links),
        }
    }

    /// The current priority ordering.
    #[must_use]
    pub fn sigma(&self) -> &Permutation {
        &self.sigma
    }

    /// Overrides the ordering.
    ///
    /// # Panics
    ///
    /// Panics if the size differs.
    pub fn set_sigma(&mut self, sigma: Permutation) {
        assert_eq!(sigma.len(), self.sigma.len(), "permutation size mismatch");
        self.sigma = sigma;
    }

    /// Runs one interval with an explicit candidate priority `c` (or none)
    /// and explicit coin flips (`xi_up[n]` = ξ_n = +1), consuming channel
    /// outcomes from `channel`.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent input sizes or on a diverged handshake (a
    /// protocol-correctness failure).
    pub fn run_interval(
        &mut self,
        arrivals: &[u32],
        candidate: Option<usize>,
        xi_up: &[bool],
        channel: &mut dyn LossModel,
        rng: &mut SimRng,
    ) -> IntervalOutcome {
        let n = self.sigma.len();
        assert_eq!(arrivals.len(), n, "one arrival count per link");
        assert_eq!(xi_up.len(), n, "one coin per link");
        if let Some(c) = candidate {
            assert!(c >= 1 && c < n, "candidate priority out of range");
        }

        // Interval setup: every device derives its own backoff from its
        // priority, its role, and the shared C (Eq. 6).
        let mut devices: Vec<Device> = (0..n)
            .map(|link| {
                let sigma_n = self.sigma.priority_of(LinkId::new(link));
                let (role, counter) = match candidate {
                    Some(c) if sigma_n == c => {
                        let stays = xi_up[link];
                        let xi: i64 = if stays { 1 } else { -1 };
                        (Role::Upper { stays }, (sigma_n as i64 - xi) as u64)
                    }
                    Some(c) if sigma_n == c + 1 => {
                        let climbs = xi_up[link];
                        let xi: i64 = if climbs { 1 } else { -1 };
                        (Role::Lower { climbs }, (sigma_n as i64 - xi) as u64)
                    }
                    Some(c) => {
                        let beta = if sigma_n < c {
                            sigma_n as u64 - 1
                        } else {
                            sigma_n as u64 + 1
                        };
                        (Role::Bystander, beta)
                    }
                    None => (Role::Bystander, sigma_n as u64 - 1),
                };
                let is_candidate = !matches!(role, Role::Bystander);
                Device::new(
                    counter,
                    arrivals[link],
                    is_candidate && arrivals[link] == 0,
                    role,
                )
            })
            .collect();

        let mut outcome = IntervalOutcome::empty(n);
        let mut medium = Medium::new();
        let timing = self.timing.clone();
        let deadline = timing.deadline();
        let slot = timing.slot();

        let mut sim: Simulator<Ev> = Simulator::new();
        sim.schedule_at(Nanos::ZERO, Ev::Boundary { first: true });
        // Run through the deadline instant itself: a frame may end exactly
        // at the deadline and still count (`fits` allows end == deadline);
        // no *new* transmission can start there because every airtime is
        // positive.
        sim.run_until(deadline, |h, ev| {
            match ev {
                Ev::Boundary { first } => {
                    let now = h.now();
                    // Phase 1: every device decides independently.
                    let mut starters: Vec<(usize, FrameKind)> = Vec::new();
                    for (link, dev) in devices.iter_mut().enumerate() {
                        if let Some(frame) = dev.on_boundary(first, now, &timing, link) {
                            starters.push((link, frame));
                        }
                    }
                    // Phase 2: the carrier reflects the union of decisions.
                    let busy = !starters.is_empty();
                    for dev in devices.iter_mut() {
                        dev.observe(busy);
                    }
                    // Phase 3: transmissions occupy the medium.
                    assert!(
                        starters.len() <= 1,
                        "reference protocol collided: {starters:?}"
                    );
                    if let Some(&(link, kind)) = starters.first() {
                        let airtime = match kind {
                            FrameKind::Data => timing.data_airtime_for(link),
                            FrameKind::Empty => timing.empty_airtime(),
                        };
                        let tx = medium.transmit(now, &[airtime]);
                        let delivered = match kind {
                            FrameKind::Data => {
                                outcome.attempts[link] += 1;
                                channel.attempt(LinkId::new(link), rng)
                            }
                            FrameKind::Empty => {
                                outcome.empty_packets += 1;
                                false
                            }
                        };
                        h.schedule_at(
                            tx.ends_at,
                            Ev::TxEnd {
                                link,
                                kind,
                                delivered,
                            },
                        );
                    } else {
                        outcome.idle_slots += 1;
                        if devices.iter().any(|d| !d.done) {
                            h.schedule_at(now + slot, Ev::Boundary { first: false });
                        }
                    }
                }
                Ev::TxEnd {
                    link,
                    kind,
                    delivered,
                } => {
                    let now = h.now();
                    if kind == FrameKind::Data && delivered {
                        outcome.deliveries[link] += 1;
                        outcome.latency_sum[link] += now;
                    }
                    if let Some(next) =
                        devices[link].on_tx_complete(kind, delivered, now, &timing, link)
                    {
                        let airtime = match next {
                            FrameKind::Data => timing.data_airtime_for(link),
                            FrameKind::Empty => timing.empty_airtime(),
                        };
                        let tx = medium.transmit(now, &[airtime]);
                        let delivered = match next {
                            FrameKind::Data => {
                                outcome.attempts[link] += 1;
                                channel.attempt(LinkId::new(link), rng)
                            }
                            FrameKind::Empty => {
                                outcome.empty_packets += 1;
                                false
                            }
                        };
                        h.schedule_at(
                            tx.ends_at,
                            Ev::TxEnd {
                                link,
                                kind: next,
                                delivered,
                            },
                        );
                    } else {
                        h.schedule_at(now + slot, Ev::Boundary { first: false });
                    }
                }
            }
            SimControl::Continue
        });

        // Interval end: collect the devices' local decisions; they must be
        // consistent by construction.
        if let Some(c) = candidate {
            let hi = self.sigma.link_with_priority(c);
            let lo = self.sigma.link_with_priority(c + 1);
            let hi_dec = devices[hi.index()].decide();
            let lo_dec = devices[lo.index()].decide();
            match (hi_dec, lo_dec) {
                (SwapDecision::Down, SwapDecision::Up) => {
                    self.sigma.apply(AdjacentTransposition::new(c));
                }
                (SwapDecision::Stay, SwapDecision::Stay) => {}
                // lint: allow(panic-macro) — this engine exists to
                // differential-test DpEngine; a diverged handshake is the
                // exact protocol bug it is built to detect, so it must
                // abort the comparison run, not limp on.
                other => panic!("handshake diverged: {other:?}"),
            }
        }

        outcome.collisions = medium.stats().collisions;
        outcome.busy_time = medium.stats().busy_time;
        outcome.leftover = deadline.saturating_sub(medium.busy_until());
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DpConfig, DpEngine};
    use proptest::prelude::*;
    use rand::Rng;
    use rtmac_phy::channel::Scripted;
    use rtmac_phy::PhyProfile;
    use rtmac_sim::SeedStream;

    fn timing(deadline_us: u64) -> MacTiming {
        MacTiming::new(
            PhyProfile::ieee80211a(),
            Nanos::from_micros(deadline_us),
            300,
        )
    }

    /// Drives the fast engine and the reference network through identical
    /// arrivals, candidates, coins, and scripted channel outcomes, and
    /// demands identical results.
    fn differential(
        n: usize,
        intervals: usize,
        deadline_us: u64,
        seed: u64,
    ) -> Result<(), TestCaseError> {
        let seeds = SeedStream::new(seed);
        let mut meta_rng = seeds.rng(0);
        let mut dummy_rng = seeds.rng(1);

        let mut engine = DpEngine::new(DpConfig::new(timing(deadline_us)), n);
        let mut reference = ReferenceNetwork::new(timing(deadline_us), n);

        for k in 0..intervals {
            let arrivals: Vec<u32> = (0..n).map(|_| meta_rng.random_range(0..3)).collect();
            let candidate = if n >= 2 {
                Some(meta_rng.random_range(1..n))
            } else {
                None
            };
            let xi_up: Vec<bool> = (0..n).map(|_| meta_rng.random_bool(0.5)).collect();
            // Extreme μ pins the engine's internal coin flips to xi_up.
            let eps = 1e-12;
            let mu: Vec<f64> = xi_up
                .iter()
                .map(|&up| if up { 1.0 - eps } else { eps })
                .collect();
            // One shared scripted channel realization per interval.
            let script: Vec<Vec<bool>> = (0..n)
                .map(|_| (0..64).map(|_| meta_rng.random_bool(0.7)).collect())
                .collect();
            let mut ch_a = Scripted::new(script.clone()).unwrap();
            let mut ch_b = Scripted::new(script).unwrap();

            let fast = engine.run_interval_with_candidates(
                &arrivals,
                &mu,
                candidate.as_slice(),
                &mut ch_a,
                &mut dummy_rng,
            );
            let slow =
                reference.run_interval(&arrivals, candidate, &xi_up, &mut ch_b, &mut dummy_rng);

            prop_assert_eq!(
                &fast.outcome.deliveries,
                &slow.deliveries,
                "deliveries diverged at interval {} (seed {})",
                k,
                seed
            );
            prop_assert_eq!(&fast.outcome.attempts, &slow.attempts);
            prop_assert_eq!(fast.outcome.empty_packets, slow.empty_packets);
            prop_assert_eq!(&fast.outcome.latency_sum, &slow.latency_sum);
            prop_assert_eq!(
                engine.sigma(),
                reference.sigma(),
                "priority orderings diverged at interval {}",
                k
            );
        }
        Ok(())
    }

    #[test]
    fn matches_fast_engine_on_a_basic_interval() {
        differential(4, 20, 5000, 7).unwrap();
    }

    #[test]
    fn matches_fast_engine_under_deadline_pressure() {
        // Tiny intervals exercise the Remark-4 and concede paths.
        differential(5, 200, 900, 11).unwrap();
        differential(3, 200, 400, 13).unwrap();
    }

    #[test]
    fn single_link_no_candidates() {
        differential(1, 10, 2000, 3).unwrap();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The two implementations agree across random sizes, deadlines,
        /// and seeds.
        #[test]
        fn prop_reference_equivalence(
            n in 1usize..7,
            deadline_us in 350u64..6000,
            seed in 0u64..10_000,
        ) {
            differential(n, 40, deadline_us, seed)?;
        }
    }
}
