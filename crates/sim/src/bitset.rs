//! A fixed-capacity bitset over dense `usize` indices.
//!
//! The batched DP interval kernel resolves carrier-sense questions ("was the
//! medium busy at slot boundary `k`?") against a shared bit-per-boundary
//! claim board instead of replaying a per-link timeline. [`BitSet`] is the
//! storage primitive: capacity is fixed at construction so the hot loop
//! never allocates, and [`BitSet::clear`] is a bounded `memset` that resets
//! the board between intervals.
//!
//! # Example
//!
//! ```
//! use rtmac_sim::BitSet;
//!
//! let mut busy = BitSet::new(128);
//! busy.set(3);
//! assert!(busy.get(3));
//! assert!(!busy.get(4));
//! busy.clear();
//! assert!(!busy.get(3));
//! ```

/// A fixed-capacity set of small integers, one bit per element.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// An empty set able to hold indices `0..capacity`.
    ///
    /// All storage is allocated here; no later operation allocates.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The fixed capacity (exclusive upper bound on valid indices).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `index` into the set.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    pub fn set(&mut self, index: usize) {
        assert!(
            index < self.capacity,
            "bit index {index} out of capacity {}",
            self.capacity
        );
        self.words[index / 64] |= 1u64 << (index % 64);
    }

    /// Whether `index` is in the set.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    #[must_use]
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.capacity,
            "bit index {index} out of capacity {}",
            self.capacity
        );
        self.words[index / 64] & (1u64 << (index % 64)) != 0
    }

    /// Removes every element. Does not allocate or shrink.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// The number of elements currently in the set.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_roundtrip() {
        let mut b = BitSet::new(130);
        assert_eq!(b.capacity(), 130);
        for i in [0, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!b.get(i));
            b.set(i);
            assert!(b.get(i));
        }
        assert_eq!(b.count_ones(), 8);
        // Setting twice is idempotent.
        b.set(63);
        assert_eq!(b.count_ones(), 8);
        b.clear();
        assert_eq!(b.count_ones(), 0);
        assert!(!b.get(64));
    }

    #[test]
    fn zero_capacity_is_inert() {
        let mut b = BitSet::new(0);
        assert_eq!(b.capacity(), 0);
        assert_eq!(b.count_ones(), 0);
        b.clear();
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn get_past_capacity_panics() {
        let b = BitSet::new(10);
        let _ = b.get(10);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn set_past_capacity_panics() {
        let mut b = BitSet::new(64);
        b.set(64);
    }
}
