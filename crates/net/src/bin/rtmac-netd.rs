//! `rtmac-netd` — one link of a DP deployment over UDP.
//!
//! A thin shell around [`rtmac_net::netd`]: parse flags, run the lockstep
//! node, print the measurement summary. Exit codes: 0 clean run, 1
//! protocol failure (desync / timeout / transport), 2 usage error.

use rtmac_net::netd;

fn main() {
    std::process::exit(real_main());
}

fn real_main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", netd::USAGE);
        return if args.is_empty() { 2 } else { 0 };
    }
    let opts = match netd::parse(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("rtmac-netd: {e}\n\n{}", netd::USAGE);
            return 2;
        }
    };
    match netd::run(&opts) {
        Ok(report) => {
            println!(
                "link {} done: fingerprint {:#018x}, {} frame(s), \
                 {} wall-clock deadline miss(es), max interval {} us",
                report.link,
                report.fingerprint,
                report.frames,
                report.misses,
                report.max_interval.as_micros()
            );
            0
        }
        Err(e) => {
            eprintln!("rtmac-netd: {e}");
            // Configuration problems (bad scenario file, mis-sized peer
            // list) are deployment mistakes, not protocol failures — keep
            // them in the usage-error bucket the exit-code table promises.
            match e {
                rtmac_net::NetError::Config(_)
                | rtmac_net::NetError::Parse { .. }
                | rtmac_net::NetError::Unsupported(_) => 2,
                _ => 1,
            }
        }
    }
}
