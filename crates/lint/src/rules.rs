//! The rule catalog: ids, default scopes, detection logic, and the
//! `--explain` texts.
//!
//! Rules run over the masked code lines produced by
//! [`crate::tokenize::lex`], so occurrences inside comments, strings, and
//! char literals never fire. The lexical rules look at one line at a
//! time; the syntactic rules ([`RuleKind::FieldArith`],
//! [`RuleKind::NanosArith`], [`RuleKind::FloatAccum`],
//! [`RuleKind::PathCall`]) additionally use the
//! brace-matched token stream of [`crate::syntax`] to walk operand paths
//! and method chains across line breaks. Detection is deliberately
//! conservative and token-based — the point is a fast, dependency-free
//! gate with an audited waiver escape hatch, not a type checker.

use crate::config::Severity;
use crate::syntax::{Syntax, TokKind};
use crate::tokenize::SourceFile;

/// How a rule detects findings.
#[derive(Debug, Clone, Copy)]
pub enum RuleKind {
    /// Word-bounded identifier tokens (e.g. `Instant`, `thread_rng`).
    Ident,
    /// Macro invocations: word-bounded token followed by `!`.
    Macro,
    /// Method calls: `.name(` with optional interior whitespace.
    Method,
    /// `HashMap`/`HashSet` mentions plus iteration calls in files that
    /// mention them.
    HashIter,
    /// Indexing expressions `expr[...]`.
    Index,
    /// Syntactic: unchecked `+`/`-`/`+=`/`-=` whose operand path ends in
    /// a guarded integer field name.
    FieldArith,
    /// Syntactic: raw binary arithmetic whose operand path ends in a
    /// guarded unit-unwrap accessor (`.as_nanos()`).
    NanosArith,
    /// Syntactic: float accumulation (`.sum::<f64>()` and friends) over a
    /// method chain rooted at a hash-ordered collection.
    FloatAccum,
    /// Syntactic: `Type::method(` path calls (API-boundary enforcement),
    /// matched across line breaks.
    PathCall,
    /// Syntactic: `seg::seg::…` module-path mentions (e.g. `std::sync`),
    /// matched across line breaks.
    SyncPath,
    /// Syntactic: `Ordering::Relaxed` (or other configured memory
    /// orderings) on atomic operations.
    RelaxedOrdering,
    /// Syntactic: a `let`-bound indexed `.lock()` guard still live across
    /// a loop whose body locks another indexed element.
    LockLoop,
    /// Crate-root hygiene attributes; evaluated at workspace level, not
    /// per line.
    CrateAttrs,
    /// Engine-internal rules (waiver bookkeeping); never scanned directly.
    Meta,
    /// Interprocedural ([`crate::reach`]): allocating constructs reachable
    /// from the configured hot-path roots over the workspace call graph.
    HotPathAlloc,
    /// Interprocedural ([`crate::reach`]): public APIs that transitively
    /// reach a panic source without a `# Panics` doc section.
    PanicReach,
    /// Interprocedural ([`crate::reach`]): raw RNG constructors and
    /// duplicate seed-stream lane constants.
    RngLane,
    /// Interprocedural ([`crate::reach`]): inline waivers hosted in
    /// functions unreachable from any entry point.
    DeadWaiver,
}

/// Default hot-path roots for `hot-path-alloc`: the per-interval decision
/// paths of the scalar, batched, and faulty DP engines (Algorithm 2 runs
/// on every link in every interval, so these must stay allocation-free).
pub const HOT_PATH_DEFAULT_ROOTS: &[&str] = &[
    "DpEngine::run_interval",
    "DpEngine::run_interval_with_candidates",
    "DpEngine::run_interval_with_coins",
    "BatchedDpEngine::step",
    "BatchedDpEngine::step_with_candidates",
    "FaultyDpEngine::run_interval",
    "FaultyDpEngine::run_interval_with_candidates",
];

/// A static rule definition. `lint.toml` can override severity, scope
/// paths, and tokens; everything else is fixed.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable rule id used in output, waivers, and `--explain`.
    pub id: &'static str,
    /// Detection mechanism.
    pub kind: RuleKind,
    /// Severity when `lint.toml` does not override it.
    pub default_severity: Severity,
    /// Whether `#[cfg(test)]` / `#[test]` code is exempt.
    pub exempt_tests: bool,
    /// Tokens the rule looks for (idents, macro names, or method names).
    pub default_tokens: &'static [&'static str],
    /// One-line summary for `--list-rules`.
    pub summary: &'static str,
    /// Long-form rationale for `--explain`.
    pub explain: &'static str,
}

/// All rules, in stable order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "wall-clock",
        kind: RuleKind::Ident,
        default_severity: Severity::Deny,
        exempt_tests: false,
        default_tokens: &["SystemTime", "Instant"],
        summary: "no wall-clock reads outside the RNG/time substrate",
        explain: "Simulation results must be a pure function of (scenario, seed). \
                  Reading the OS clock (std::time::SystemTime / Instant) anywhere in a \
                  result path silently breaks bit-identical reproduction — the golden \
                  fig3/fig9 files only catch it after the fact. Simulated time flows \
                  from rtmac_sim::Nanos; host time is never needed. The rule applies \
                  to test code too: golden tests rely on determinism as much as the \
                  library does. Waive with `// lint: allow(wall-clock) — <reason>` \
                  only for genuinely wall-clock-dependent tooling (none exists today).",
    },
    Rule {
        id: "os-entropy",
        kind: RuleKind::Ident,
        default_severity: Severity::Deny,
        exempt_tests: false,
        default_tokens: &[
            "thread_rng",
            "from_entropy",
            "from_os_rng",
            "OsRng",
            "getrandom",
        ],
        summary: "no OS-entropy RNG constructors outside crates/sim/src/rng.rs",
        explain: "Every random draw in the workspace must come from a SimRng seeded \
                  through rtmac_sim::SeedStream, so replication i of scenario s is the \
                  same bit pattern on every machine and worker count. thread_rng(), \
                  SmallRng::from_entropy(), OsRng, and getrandom all pull OS entropy \
                  and destroy that property. crates/sim/src/rng.rs is the single \
                  audited place allowed to name these constructors.",
    },
    Rule {
        id: "nondeterministic-iter",
        kind: RuleKind::HashIter,
        default_severity: Severity::Deny,
        exempt_tests: true,
        default_tokens: &["HashMap", "HashSet"],
        summary: "no hash-ordered collections in deterministic result paths",
        explain: "HashMap/HashSet iteration order depends on the hasher's per-process \
                  random state, so any result that flows through `.iter()`, `.keys()`, \
                  `.values()`, `.drain()`, or a `for` loop over a hash map can differ \
                  between runs. In the crates that feed figures (core, mac, analysis, \
                  bench) use BTreeMap/BTreeSet or sort before iterating. The rule \
                  flags every HashMap/HashSet mention in non-test code of the scoped \
                  crates, plus iteration-shaped calls in files that mention them; \
                  keyed lookups that never iterate can carry an inline waiver: \
                  `// lint: allow(nondeterministic-iter) — <reason>`.",
    },
    Rule {
        id: "panic-unwrap",
        kind: RuleKind::Method,
        default_severity: Severity::Deny,
        exempt_tests: true,
        default_tokens: &["unwrap"],
        summary: "no bare .unwrap() in library crates",
        explain: "Library crates must either propagate errors (Result/Option), fall \
                  back explicitly (unwrap_or / unwrap_or_else / let-else), or document \
                  a real invariant. A bare .unwrap() does none of these. Convert it, \
                  or — for a genuine can't-happen invariant whose silent fallback \
                  would corrupt results — keep it loud and waive it with \
                  `// lint: allow(panic-unwrap) — <reason>`. Test code is exempt.",
    },
    Rule {
        id: "panic-expect",
        kind: RuleKind::Method,
        default_severity: Severity::Deny,
        exempt_tests: true,
        default_tokens: &["expect"],
        summary: "no bare .expect() in library crates",
        explain: "Same policy as panic-unwrap: .expect(\"...\") is a panic with a \
                  message. Prefer propagation or an explicit fallback; where the \
                  panic guards a real invariant, keep it and add \
                  `// lint: allow(panic-expect) — <reason>` stating why it cannot \
                  fire. Test code is exempt.",
    },
    Rule {
        id: "panic-macro",
        kind: RuleKind::Macro,
        default_severity: Severity::Deny,
        exempt_tests: true,
        default_tokens: &["panic", "todo", "unimplemented"],
        summary: "no panic!/todo!/unimplemented! in library crates",
        explain: "panic! aborts a caller that may be halfway through a batch run; \
                  todo!/unimplemented! are unfinished code shipping as a crash. \
                  Return a ConfigError (or a new error variant) instead. assert!/ \
                  debug_assert! remain allowed: they state invariants, and the \
                  documented-panic constructors (`# Panics` sections) can waive with \
                  `// lint: allow(panic-macro) — <reason>`. unreachable! is also \
                  allowed — it marks arms the type system cannot rule out.",
    },
    Rule {
        id: "debug-print",
        kind: RuleKind::Macro,
        default_severity: Severity::Deny,
        exempt_tests: true,
        default_tokens: &["dbg", "println", "eprintln", "print", "eprint"],
        summary: "no dbg!/println! in library crates",
        explain: "Library crates compute; binaries (cli, bench, examples) print. A \
                  stray println! in a library corrupts machine-readable output (CSV \
                  tables, golden files) and dbg! is a debugging leftover by \
                  definition. Route output through the caller or a returned value.",
    },
    Rule {
        id: "direct-index",
        kind: RuleKind::Index,
        default_severity: Severity::Allow,
        exempt_tests: true,
        default_tokens: &[],
        summary: "flag `expr[i]` indexing (off by default; audit aid)",
        explain: "Slice indexing panics on out-of-bounds, which is a third panic \
                  path next to unwrap/expect. The simulation hot loops index \
                  heavily with loop-bounded indices, so this rule is `allow` by \
                  default and exists as an audit mode: flip it to warn/deny in \
                  lint.toml to enumerate every indexing site when hunting a panic.",
    },
    Rule {
        id: "unchecked-arith",
        kind: RuleKind::FieldArith,
        default_severity: Severity::Deny,
        exempt_tests: true,
        default_tokens: &[
            "interval",
            "intervals",
            "cumulative_deliveries",
            "idle_slots",
            "collisions",
            "empty_packets",
            "busy_time",
        ],
        summary: "no unchecked +/- on debt/time integer counter fields",
        explain: "The debt ledger's interval and delivery counters and the \
                  accumulated interval statistics are u64/Nanos values that live for \
                  an entire batch run: a bare `+`/`-`/`+=`/`-=` on them panics on \
                  overflow in debug builds and silently wraps in release builds, \
                  corrupting every later throughput and deficiency statistic. Use \
                  `saturating_add`/`saturating_sub` (or `checked_*` where the caller \
                  can react). The rule walks the operand path of each arithmetic \
                  operator — across method calls, indexing, and line breaks — and \
                  fires when the path ends in one of the guarded field names from \
                  lint.toml. Test code is exempt.",
    },
    Rule {
        id: "nanos-raw-arith",
        kind: RuleKind::NanosArith,
        default_severity: Severity::Deny,
        exempt_tests: true,
        default_tokens: &["as_nanos"],
        summary: "no raw +/-/*, / or % arithmetic on unwrapped Nanos values",
        explain: "`.as_nanos()` unwraps a `Nanos` into a bare u64, dropping both \
                  the unit and the overflow discipline: a raw `+`/`-`/`*` on the \
                  result can wrap (slot counts times nanosecond deadlines exceed \
                  u64 within hours of simulated time) and a raw `/`/`%` encodes a \
                  unit conversion as an unexplained magic constant. Keep \
                  durations in `Nanos` and use its saturating_*/checked_* \
                  operations, or cross the boundary through a named accessor \
                  (`as_micros`, `as_millis_f64`). The rule walks the operand \
                  paths of each arithmetic operator across calls, indexing, and \
                  line breaks, and fires when a path ends in a guarded unwrap \
                  accessor; chaining a checked method \
                  (`.as_nanos().checked_div(..)`) or an explicit `as` cast into \
                  a wider domain does not fire. Test code is exempt.",
    },
    Rule {
        id: "float-accum-unordered",
        kind: RuleKind::FloatAccum,
        default_severity: Severity::Deny,
        exempt_tests: true,
        default_tokens: &[
            "values",
            "into_values",
            "keys",
            "into_keys",
            "drain",
            "iter",
            "iter_mut",
            "into_iter",
        ],
        summary: "no float accumulation over hash-ordered iteration",
        explain: "Float addition is not associative, so `.sum::<f64>()`, \
                  `.product::<f64>()`, or a float `fold` over an iterator whose order \
                  varies between runs (HashMap/HashSet) produces run-dependent bits \
                  even when the element *set* is identical — exactly the class of \
                  nondeterminism the golden figures cannot tolerate. The rule walks \
                  the receiver chain of each float-accumulation terminal back to its \
                  root and fires when the chain contains an unordered iteration \
                  method and the root is a hash-ordered collection. Sort first or \
                  use a BTree collection.",
    },
    Rule {
        id: "scenario-boundary",
        kind: RuleKind::PathCall,
        default_severity: Severity::Deny,
        exempt_tests: false,
        default_tokens: &[
            "Network::builder",
            "NetworkBuilder::new",
            "NetworkBuilder::default",
        ],
        summary: "networks are constructed through rtmac::scenario only",
        explain: "PR 1 made `rtmac::scenario` the single entry point for network \
                  construction: a Scenario names a workload, channel, policy, and \
                  seed declaratively, which is what makes batch runs replicable and \
                  the figure pipeline auditable. Calling `Network::builder()` (or \
                  `NetworkBuilder::new`/`default`) anywhere else bypasses that layer \
                  and silently forks the configuration surface. Build a Scenario and \
                  use `to_builder()` when you genuinely need the escape hatch; only \
                  crates/core/src (the layer's own implementation and tests) may \
                  name the builder directly.",
    },
    Rule {
        id: "raw-sync-primitive",
        kind: RuleKind::SyncPath,
        default_severity: Severity::Deny,
        exempt_tests: true,
        default_tokens: &["std::sync", "std::thread::spawn", "std::thread::scope"],
        summary: "concurrency primitives go through the rtmac::sync facade",
        explain: "The work-stealing Runner's shared state flows through the \
                  rtmac::sync facade (Mutex, AtomicUsize, run_threads), which is \
                  what lets `rtmac-verify sched` run the *same* code on a \
                  cooperative model scheduler and exhaustively check its \
                  interleavings. A raw std::sync::Mutex, std::sync::atomic, \
                  std::thread::spawn, or std::thread::scope in library code is \
                  invisible to that checker: its interleavings are never explored \
                  and its deadlocks never convicted. Route concurrency through \
                  crate::sync (crates/core/src/sync itself and crates/sim are the \
                  audited implementations). Checker instrumentation that must \
                  stay invisible to the model scheduler may waive with \
                  `// lint: allow(raw-sync-primitive) — <why it must not be \
                  modeled>`. Test code is exempt.",
    },
    Rule {
        id: "relaxed-ordering-audit",
        kind: RuleKind::RelaxedOrdering,
        default_severity: Severity::Deny,
        exempt_tests: true,
        default_tokens: &["Relaxed"],
        summary: "Ordering::Relaxed only with an audited waiver naming the counter",
        explain: "Relaxed atomics order nothing: a Relaxed store is allowed to \
                  become visible after operations that follow it in program \
                  order, which is exactly the class of bug the interleaving \
                  checker cannot see (the model scheduler is sequentially \
                  consistent — DESIGN.md §12). Default to SeqCst; the cost is \
                  negligible off the hot path. Where Relaxed is genuinely \
                  sufficient — a counter whose atomicity alone carries the \
                  invariant and whose value orders nothing else — keep it and \
                  write `// lint: allow(relaxed-ordering-audit) — <which counter \
                  and why no ordering is needed>` so the audit trail names the \
                  proof obligation. Test code is exempt.",
    },
    Rule {
        id: "lock-in-loop-hold",
        kind: RuleKind::LockLoop,
        default_severity: Severity::Deny,
        exempt_tests: true,
        default_tokens: &[],
        summary: "no indexed lock guard held across a loop that locks siblings",
        explain: "Binding `let guard = locks[i].lock()` and then entering a \
                  for/while/loop body that locks *another* element of a lock \
                  array is the symmetric-deadlock shape: two workers each hold \
                  their own element while waiting for the other's. The runner's \
                  steal scan is the canonical instance — the own-range guard \
                  must drop before the victim scan starts (scope the pop in a \
                  block). The rule fires on the inner indexed `.lock()` when an \
                  earlier `let`-bound indexed guard from the same enclosing \
                  block is still live at the loop, and stays quiet when the \
                  guard is scoped out or explicitly dropped first. A \
                  deliberately ordered acquisition (e.g. always ascending index) \
                  can waive with `// lint: allow(lock-in-loop-hold) — <the lock \
                  order that excludes the cycle>`. Test code is exempt.",
    },
    Rule {
        id: "missing-crate-attrs",
        kind: RuleKind::CrateAttrs,
        default_severity: Severity::Deny,
        exempt_tests: false,
        default_tokens: &[],
        summary: "every crate opts into the workspace lint table (or carries the attrs)",
        explain: "Each workspace crate must either set `lints.workspace = true` in \
                  its Cargo.toml (inheriting [workspace.lints]'s forbid(unsafe_code) \
                  + warn(missing_docs)) or carry `#![forbid(unsafe_code)]` and \
                  `#![warn(missing_docs)]` at its crate root. This keeps lint levels \
                  centralized instead of drifting per crate.",
    },
    Rule {
        id: "hot-path-alloc",
        kind: RuleKind::HotPathAlloc,
        default_severity: Severity::Deny,
        exempt_tests: true,
        default_tokens: &[
            "Vec::new",
            "Vec::with_capacity",
            "String::new",
            "String::from",
            "String::with_capacity",
            "Box::new",
            "Rc::new",
            "Arc::new",
            "vec!",
            "format!",
            "clone",
            "to_vec",
            "to_owned",
            "to_string",
            "collect",
            "repeat",
        ],
        summary: "no allocating construct reachable from the hot-path roots",
        explain: "Algorithm 2 runs on every link in every interval, so the \
                  per-interval decision path must be allocation-free: a single \
                  Vec::new in a transitively-called helper turns the massive-N \
                  batched sweep into an allocator benchmark. This rule builds the \
                  workspace call graph (DESIGN.md §13), walks forward from the \
                  configured `roots` (default: the DP engines' interval entry \
                  points), and convicts every allocating construct — constructor \
                  paths like `Vec::new`, allocating methods like `.clone()`/\
                  `.collect()`, and macros like `vec!`/`format!` — in any reachable \
                  function, with the witness call path in the message. Deliberately \
                  absent from the token list: `push`/`extend`/`extend_from_slice`, \
                  which are amortized-allocation-free on the pre-sized buffers the \
                  engines reuse; the runtime `alloc_regression` test cross-checks \
                  that assumption dynamically, while this rule covers call paths \
                  the test never executes. Setup-time allocation in constructors \
                  that the interval loop never re-enters may waive with \
                  `// lint: allow(hot-path-alloc) — <why this runs once>`.",
    },
    Rule {
        id: "panic-reachability",
        kind: RuleKind::PanicReach,
        default_severity: Severity::Deny,
        exempt_tests: true,
        default_tokens: &["panic!", "todo!", "unimplemented!", "unwrap", "expect"],
        summary: "pub APIs reaching a panic source must document `# Panics`",
        explain: "The Runner's panic-propagation contract (DESIGN.md §11) makes a \
                  worker panic abort the whole batch, so a caller deserves to know \
                  which public entry points can panic. This rule reverse-walks the \
                  workspace call graph from every direct panic source — `panic!`-\
                  family macros, `.unwrap()`/`.expect()` calls, and (when `[]` is in \
                  the token list) slice indexing — and requires each `pub` function \
                  of the scoped crates that transitively reaches one to carry a \
                  `# Panics` doc section naming the invariant, or an audited \
                  `// lint: allow(panic-reachability) — <reason>` waiver. The \
                  call-graph approximation resolves method calls by name, so a \
                  finding's witness path may go through a trait method with several \
                  implementations; the documented invariant must cover them all.",
    },
    Rule {
        id: "rng-lane-discipline",
        kind: RuleKind::RngLane,
        default_severity: Severity::Deny,
        exempt_tests: true,
        default_tokens: &["seed_from_u64", "from_seed", "from_rng"],
        summary: "RNG construction flows from SeedStream lanes, one lane per subsystem",
        explain: "Replicability is a statement about exact sample paths: the debt \
                  analysis only transfers if arrivals, protocol coins, and fault \
                  processes each consume their own independent substream. Two bug \
                  classes break that. First, constructing an RNG directly \
                  (`SmallRng::seed_from_u64(7)`) instead of drawing it from \
                  `SeedStream::rng`/`substream` silently correlates it with \
                  whatever else used that constant — only crates/sim/src/rng.rs \
                  (the audited substrate) may name raw constructors. Second, \
                  drawing the *same* lane constant twice from the same stream in \
                  one function (`seeds.rng(1)` for arrivals and again for faults) \
                  yields two identical generators; the fix that introduced the \
                  dedicated fault lane exists precisely because of this class. The \
                  rule flags raw constructor tokens anywhere outside the allow-\
                  paths and duplicate `(stream, lane)` pairs per function. A \
                  deliberate re-draw (replaying the same sequence) may waive with \
                  `// lint: allow(rng-lane-discipline) — <why the streams must \
                  coincide>`. Test code is exempt.",
    },
    Rule {
        id: "dead-waiver-sweep",
        kind: RuleKind::DeadWaiver,
        default_severity: Severity::Deny,
        exempt_tests: false,
        default_tokens: &[],
        summary: "waivers hosted in call-graph-unreachable functions are stale",
        explain: "An inline waiver justifies a finding *in context*: 'this unwrap \
                  cannot fire because the caller checked'. When refactoring \
                  removes every call path to the host function, the justification \
                  is dangling even though the waived token — and therefore the \
                  line-level stale-waiver check — still matches. This rule walks \
                  the call graph forward from every entry point (pub items, \
                  `main`, test code, top-level references like criterion_group!, \
                  files under tests/examples/benches) and reports waivers whose \
                  host function no path reaches. Delete the dead code or the \
                  waiver; if the function is reflection-reached in a way the \
                  graph cannot see, make it `pub(crate)` so the entry-point set \
                  includes it.",
    },
    Rule {
        id: "waiver-missing-reason",
        kind: RuleKind::Meta,
        default_severity: Severity::Deny,
        exempt_tests: false,
        default_tokens: &[],
        summary: "inline waivers must state a reason",
        explain: "`// lint: allow(rule)` without a reason is an unaudited hole. \
                  Write `// lint: allow(rule) — <why this cannot fire / why it is \
                  acceptable>`. The waiver still suppresses the original finding so \
                  the output stays focused on the real problem: the missing audit \
                  trail.",
    },
    Rule {
        id: "stale-waiver",
        kind: RuleKind::Meta,
        default_severity: Severity::Warn,
        exempt_tests: false,
        default_tokens: &[],
        summary: "waivers that no longer suppress anything",
        explain: "An inline or [[waiver]] entry that matches no finding is debt: the \
                  code it excused has been fixed or moved. Delete the waiver so the \
                  audit surface stays minimal.",
    },
];

/// Looks a rule up by id.
#[must_use]
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// A raw finding produced by a scanner, before waiver application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFinding {
    /// 1-based line.
    pub line: usize,
    /// 1-based column of the matched token.
    pub col: usize,
    /// The rule that fired.
    pub rule: &'static str,
    /// Human-readable description of the occurrence.
    pub message: String,
}

/// Runs one file-level rule over a lexed file. `syntax` is the file's
/// matched token stream (shared across rules); `tokens` is the effective
/// token list (config override or the rule's default).
#[must_use]
pub fn scan(rule: &Rule, file: &SourceFile, syntax: &Syntax, tokens: &[String]) -> Vec<RawFinding> {
    let mut findings = Vec::new();
    match rule.kind {
        RuleKind::Ident => {
            for_each_line(rule, file, |ln, code| {
                for token in tokens {
                    for col in word_positions(code, token) {
                        findings.push(RawFinding {
                            line: ln,
                            col,
                            rule: rule.id,
                            message: format!("use of `{token}`"),
                        });
                    }
                }
            });
        }
        RuleKind::Macro => {
            for_each_line(rule, file, |ln, code| {
                for token in tokens {
                    for col in word_positions(code, token) {
                        if next_nonspace_is(code, col - 1 + token.len(), '!') {
                            findings.push(RawFinding {
                                line: ln,
                                col,
                                rule: rule.id,
                                message: format!("`{token}!` invocation"),
                            });
                        }
                    }
                }
            });
        }
        RuleKind::Method => {
            for_each_line(rule, file, |ln, code| {
                for token in tokens {
                    for col in word_positions(code, token) {
                        let idx = col - 1;
                        if prev_nonspace_is(code, idx, '.')
                            && next_nonspace_is(code, idx + token.len(), '(')
                        {
                            findings.push(RawFinding {
                                line: ln,
                                col,
                                rule: rule.id,
                                message: format!("bare `.{token}()`"),
                            });
                        }
                    }
                }
            });
        }
        RuleKind::HashIter => {
            let mut mentioned = false;
            for_each_line(rule, file, |ln, code| {
                for token in tokens {
                    for col in word_positions(code, token) {
                        mentioned = true;
                        findings.push(RawFinding {
                            line: ln,
                            col,
                            rule: rule.id,
                            message: format!(
                                "`{token}` in a deterministic result path; use a \
                                 BTree collection or sorted iteration"
                            ),
                        });
                    }
                }
            });
            if mentioned {
                const ITER_METHODS: &[&str] = &[
                    "iter",
                    "iter_mut",
                    "keys",
                    "values",
                    "values_mut",
                    "into_iter",
                    "drain",
                    "retain",
                ];
                for_each_line(rule, file, |ln, code| {
                    for m in ITER_METHODS {
                        for col in word_positions(code, m) {
                            let idx = col - 1;
                            if prev_nonspace_is(code, idx, '.')
                                && next_nonspace_is(code, idx + m.len(), '(')
                            {
                                findings.push(RawFinding {
                                    line: ln,
                                    col,
                                    rule: rule.id,
                                    message: format!(
                                        "`.{m}()` in a file using a hash-ordered \
                                         collection; iteration order may vary"
                                    ),
                                });
                            }
                        }
                    }
                });
            }
        }
        RuleKind::Index => {
            for_each_line(rule, file, |ln, code| {
                let bytes = code.as_bytes();
                for (i, &b) in bytes.iter().enumerate() {
                    if b != b'[' {
                        continue;
                    }
                    // Indexing: `[` directly preceded (modulo spaces) by an
                    // identifier character or a closing bracket — i.e. an
                    // expression, not a type, attribute, or slice pattern.
                    let mut p = i;
                    while p > 0 && bytes[p - 1] == b' ' {
                        p -= 1;
                    }
                    if p == 0 {
                        continue;
                    }
                    let prev = bytes[p - 1];
                    if prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')' || prev == b']'
                    {
                        findings.push(RawFinding {
                            line: ln,
                            col: i + 1,
                            rule: rule.id,
                            message: "direct indexing can panic out-of-bounds".to_string(),
                        });
                    }
                }
            });
        }
        RuleKind::FieldArith => {
            for (i, t) in syntax.tokens.iter().enumerate() {
                if t.kind != TokKind::Punct {
                    continue;
                }
                let op = t.text.as_str();
                if !matches!(op, "+" | "-" | "+=" | "-=") {
                    continue;
                }
                if rule.exempt_tests && t.in_test {
                    continue;
                }
                if matches!(op, "+" | "-") && !syntax.is_binary_operator(i) {
                    continue;
                }
                let guarded = |idx: usize| {
                    let name = &syntax.tokens[idx].text;
                    tokens.iter().any(|g| g == name).then_some(idx)
                };
                let mut hit = syntax.lhs_terminal_ident(i).and_then(guarded);
                if hit.is_none() && matches!(op, "+" | "-") {
                    hit = syntax.rhs_terminal_ident(i + 1).and_then(guarded);
                }
                if let Some(idx) = hit {
                    findings.push(RawFinding {
                        line: t.line,
                        col: t.col,
                        rule: rule.id,
                        message: format!(
                            "unchecked `{op}` on counter field `{}`; use \
                             saturating_*/checked_* arithmetic",
                            syntax.tokens[idx].text
                        ),
                    });
                }
            }
        }
        RuleKind::NanosArith => {
            for (i, t) in syntax.tokens.iter().enumerate() {
                if t.kind != TokKind::Punct {
                    continue;
                }
                let op = t.text.as_str();
                if !matches!(
                    op,
                    "+" | "-" | "*" | "/" | "%" | "+=" | "-=" | "*=" | "/=" | "%="
                ) {
                    continue;
                }
                if rule.exempt_tests && t.in_test {
                    continue;
                }
                let bare = !op.ends_with('=');
                if bare && !syntax.is_binary_operator(i) {
                    continue;
                }
                let guarded = |idx: usize| {
                    let name = &syntax.tokens[idx].text;
                    tokens.iter().any(|g| g == name).then_some(idx)
                };
                // Compound assignments only read on the right; the left
                // side of `+=` is a place expression, never a call.
                let mut hit = bare
                    .then(|| syntax.lhs_terminal_ident(i).and_then(guarded))
                    .flatten();
                if hit.is_none() {
                    hit = rhs_operand_end(syntax, i + 1).and_then(guarded);
                }
                if let Some(idx) = hit {
                    findings.push(RawFinding {
                        line: t.line,
                        col: t.col,
                        rule: rule.id,
                        message: format!(
                            "raw `{op}` on the output of `.{}()`; keep the value \
                             in `Nanos` (saturating_*/checked_*) or name the \
                             unit conversion",
                            syntax.tokens[idx].text
                        ),
                    });
                }
            }
        }
        RuleKind::FloatAccum => {
            for (i, t) in syntax.tokens.iter().enumerate() {
                if t.kind != TokKind::Ident {
                    continue;
                }
                if rule.exempt_tests && t.in_test {
                    continue;
                }
                if !is_float_accum_terminal(syntax, i) {
                    continue;
                }
                let chain = syntax.receiver_chain(i);
                if !chain.iter().any(|m| tokens.iter().any(|g| g == m)) {
                    continue;
                }
                // The chain must be rooted at a hash-ordered collection:
                // either it names one directly (`HashMap::from(..)`), or
                // its root identifier co-occurs with HashMap/HashSet on a
                // code line of this file (its declaration).
                let chain_names_hash = chain.iter().any(|s| *s == "HashMap" || *s == "HashSet");
                let root_is_hash = chain.last().is_some_and(|root| {
                    file.code.iter().any(|line| {
                        !word_positions(line, root).is_empty()
                            && (!word_positions(line, "HashMap").is_empty()
                                || !word_positions(line, "HashSet").is_empty())
                    })
                });
                if chain_names_hash || root_is_hash {
                    findings.push(RawFinding {
                        line: t.line,
                        col: t.col,
                        rule: rule.id,
                        message: format!(
                            "float accumulation `.{}(..)` over a hash-ordered \
                             iteration; order-dependent rounding breaks bit \
                             reproducibility — sort first or use a BTree collection",
                            t.text
                        ),
                    });
                }
            }
        }
        RuleKind::PathCall => {
            for pat in tokens {
                let Some((ty, method)) = pat.split_once("::") else {
                    continue;
                };
                for (i, t) in syntax.tokens.iter().enumerate() {
                    if t.kind != TokKind::Ident || t.text != ty {
                        continue;
                    }
                    if rule.exempt_tests && t.in_test {
                        continue;
                    }
                    let text_at = |k: usize| syntax.tokens.get(k).map(|t| t.text.as_str());
                    if text_at(i + 1) == Some("::")
                        && text_at(i + 2) == Some(method)
                        && text_at(i + 3) == Some("(")
                    {
                        findings.push(RawFinding {
                            line: t.line,
                            col: t.col,
                            rule: rule.id,
                            message: format!(
                                "`{pat}()` bypasses the scenario layer; build \
                                 networks through rtmac::scenario (or its \
                                 to_builder() escape hatch)"
                            ),
                        });
                    }
                }
            }
        }
        RuleKind::SyncPath => {
            for pat in tokens {
                let segs: Vec<&str> = pat.split("::").collect();
                let Some(first) = segs.first() else { continue };
                'occurrence: for (i, t) in syntax.tokens.iter().enumerate() {
                    if t.kind != TokKind::Ident || &t.text != first {
                        continue;
                    }
                    if rule.exempt_tests && t.in_test {
                        continue;
                    }
                    // The match must start a path: `foo::std::sync` is not
                    // the std crate.
                    if i.checked_sub(1)
                        .and_then(|p| syntax.tokens.get(p))
                        .is_some_and(|p| p.text == "::" || p.text == ".")
                    {
                        continue;
                    }
                    for (s, seg) in segs.iter().enumerate().skip(1) {
                        let link = syntax.tokens.get(i + 2 * s - 1);
                        let name = syntax.tokens.get(i + 2 * s);
                        if link.map(|t| t.text.as_str()) != Some("::")
                            || name.map(|t| t.text.as_str()) != Some(*seg)
                        {
                            continue 'occurrence;
                        }
                    }
                    findings.push(RawFinding {
                        line: t.line,
                        col: t.col,
                        rule: rule.id,
                        message: format!(
                            "`{pat}` bypasses the rtmac::sync facade; the \
                             interleaving checker cannot model it — route \
                             concurrency through crate::sync"
                        ),
                    });
                }
            }
        }
        RuleKind::RelaxedOrdering => {
            for (i, t) in syntax.tokens.iter().enumerate() {
                if t.kind != TokKind::Ident || !tokens.iter().any(|g| g == &t.text) {
                    continue;
                }
                if rule.exempt_tests && t.in_test {
                    continue;
                }
                let prev = |k: usize| {
                    i.checked_sub(k)
                        .and_then(|j| syntax.tokens.get(j))
                        .map(|t| t.text.as_str())
                };
                if prev(1) == Some("::") && prev(2) == Some("Ordering") {
                    findings.push(RawFinding {
                        line: t.line,
                        col: t.col,
                        rule: rule.id,
                        message: format!(
                            "`Ordering::{}` without an audited waiver; default \
                             to SeqCst or name the counter and why it needs no \
                             ordering",
                            t.text
                        ),
                    });
                }
            }
        }
        RuleKind::LockLoop => {
            scan_lock_loop(rule, syntax, &mut findings);
        }
        // Workspace-level and interprocedural rules run in the engine
        // (crate attrs, waiver bookkeeping) or over the call graph
        // ([`crate::reach`]), never per file.
        RuleKind::CrateAttrs
        | RuleKind::Meta
        | RuleKind::HotPathAlloc
        | RuleKind::PanicReach
        | RuleKind::RngLane
        | RuleKind::DeadWaiver => {}
    }
    findings
}

/// The `lock-in-loop-hold` scanner: fires on an indexed `.lock()` inside
/// a loop body when an earlier `let`-bound indexed guard from the same
/// enclosing block is still live at the loop.
fn scan_lock_loop(rule: &Rule, syntax: &Syntax, findings: &mut Vec<RawFinding>) {
    // Enclosing `{` token index for every token (usize::MAX = file level).
    let mut stack: Vec<usize> = Vec::new();
    let mut encl = vec![usize::MAX; syntax.tokens.len()];
    for (i, t) in syntax.tokens.iter().enumerate() {
        if t.kind == TokKind::Close && t.text == "}" {
            stack.pop();
        }
        encl[i] = stack.last().copied().unwrap_or(usize::MAX);
        if t.kind == TokKind::Open && t.text == "{" {
            stack.push(i);
        }
    }
    // An indexed lock call: `…]​.lock(` — the receiver is an element of a
    // lock array, the deadlock-prone shape (a single named mutex cannot
    // form the symmetric cycle this rule hunts).
    let is_indexed_lock = |i: usize| {
        let t = &syntax.tokens[i];
        t.kind == TokKind::Ident
            && t.text == "lock"
            && i >= 2
            && syntax.tokens[i - 1].text == "."
            && syntax.tokens[i - 2].text == "]"
            && syntax.tokens.get(i + 1).is_some_and(|t| t.text == "(")
    };
    // Whether the statement containing token `i` starts with `let` (the
    // guard outlives the expression instead of dropping at the `;`).
    let is_let_bound = |i: usize| {
        let mut j = i;
        while j > 0 {
            j -= 1;
            let t = &syntax.tokens[j];
            if matches!(t.text.as_str(), ";" | "{" | "}") {
                return false;
            }
            if t.kind == TokKind::Ident && t.text == "let" {
                return true;
            }
        }
        false
    };
    for i in 0..syntax.tokens.len() {
        if !is_indexed_lock(i) || !is_let_bound(i) {
            continue;
        }
        if rule.exempt_tests && syntax.tokens[i].in_test {
            continue;
        }
        let block = encl[i];
        let block_end = if block == usize::MAX {
            syntax.tokens.len()
        } else {
            syntax.partner(block).unwrap_or(syntax.tokens.len())
        };
        // The guard lives to the end of its block; scan the rest of the
        // block for a loop whose body locks another indexed element. An
        // explicit `drop` before the loop releases the guard — stop.
        let mut k = i + 1;
        while k < block_end {
            let t = &syntax.tokens[k];
            if t.kind == TokKind::Ident && t.text == "drop" && encl[k] == block {
                break;
            }
            if t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "for" | "while" | "loop")
                && encl[k] == block
            {
                // The loop body is the first `{` after the keyword at the
                // same nesting level.
                let body =
                    (k + 1..block_end).find(|&b| syntax.tokens[b].text == "{" && encl[b] == block);
                if let Some(body) = body {
                    let body_end = syntax.partner(body).unwrap_or(block_end);
                    if let Some(inner) = (body + 1..body_end).find(|&c| is_indexed_lock(c)) {
                        let it = &syntax.tokens[inner];
                        findings.push(RawFinding {
                            line: it.line,
                            col: it.col,
                            rule: rule.id,
                            message: format!(
                                "indexed `.lock()` inside a `{}` body while the \
                                 indexed guard bound on line {} is still live; \
                                 drop or scope the first guard before the loop \
                                 (symmetric-deadlock shape)",
                                t.text, syntax.tokens[i].line
                            ),
                        });
                        break;
                    }
                    k = body_end;
                    continue;
                }
            }
            k += 1;
        }
    }
}

/// The last method/field segment of the operand expression *starting* at
/// token `start`, stepping over call and index argument groups — for
/// `c.deadline.as_nanos().max(1)` this returns `max`'s token index. An
/// operand that does not begin with an identifier, or that ends in an
/// explicit `as` cast (a deliberate move into the raw integer domain),
/// yields `None`.
fn rhs_operand_end(syntax: &Syntax, start: usize) -> Option<usize> {
    let mut j = start;
    syntax.tokens.get(j).filter(|t| t.kind == TokKind::Ident)?;
    let mut last = j;
    loop {
        match syntax.tokens.get(j + 1).map(|t| t.text.as_str()) {
            Some(".") | Some("::") => match syntax.tokens.get(j + 2) {
                Some(seg) if seg.kind == TokKind::Ident => {
                    j += 2;
                    last = j;
                }
                _ => return Some(last),
            },
            Some("(") | Some("[") => j = syntax.partner(j + 1)?,
            Some("as") => return None,
            _ => return Some(last),
        }
    }
}

/// Whether token `i` is a float-accumulation terminal: `.sum::<f64>()`,
/// `.product::<f32>()`, or `.fold(<float literal>, ..)`.
fn is_float_accum_terminal(syntax: &Syntax, i: usize) -> bool {
    let prev_is_dot = i
        .checked_sub(1)
        .and_then(|p| syntax.tokens.get(p))
        .is_some_and(|t| t.text == ".");
    if !prev_is_dot {
        return false;
    }
    let text_at = |k: usize| syntax.tokens.get(k).map(|t| t.text.as_str());
    match text_at(i) {
        Some("sum" | "product") => {
            text_at(i + 1) == Some("::")
                && text_at(i + 2) == Some("<")
                && matches!(text_at(i + 3), Some("f32" | "f64"))
        }
        Some("fold") => {
            text_at(i + 1) == Some("(")
                && syntax
                    .tokens
                    .get(i + 2)
                    .is_some_and(|t| t.kind == TokKind::Number && is_float_literal(&t.text))
        }
        _ => false,
    }
}

/// Whether a numeric literal is a float: has a fractional part, an
/// exponent, or an explicit `f32`/`f64` suffix.
fn is_float_literal(text: &str) -> bool {
    text.contains('.') || text.ends_with("f32") || text.ends_with("f64")
}

fn for_each_line(rule: &Rule, file: &SourceFile, mut f: impl FnMut(usize, &str)) {
    for (idx, code) in file.code.iter().enumerate() {
        if rule.exempt_tests && file.in_test[idx] {
            continue;
        }
        f(idx + 1, code);
    }
}

/// 1-based columns of word-bounded occurrences of `needle` in `hay`.
fn word_positions(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    if needle.is_empty() {
        return out;
    }
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let before_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            out.push(hay[..start].chars().count() + 1);
        }
        from = start + 1;
    }
    out
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Whether the first non-space byte before byte index `idx` is `c`.
fn prev_nonspace_is(line: &str, idx: usize, c: char) -> bool {
    line[..idx].trim_end().ends_with(c)
}

/// Whether the first non-space byte at or after byte index `idx` is `c`.
fn next_nonspace_is(line: &str, idx: usize, c: char) -> bool {
    line[idx..].trim_start().starts_with(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::lex;

    fn run(rule_id: &str, src: &str) -> Vec<RawFinding> {
        let rule = rule_by_id(rule_id).expect("known rule");
        let tokens: Vec<String> = rule.default_tokens.iter().map(|t| t.to_string()).collect();
        let file = lex(src);
        let syn = crate::syntax::scan(&file);
        scan(rule, &file, &syn, &tokens)
    }

    #[test]
    fn ident_rule_respects_word_boundaries_and_strings() {
        let hits = run("wall-clock", "let t = Instant::now();\n");
        assert_eq!(hits.len(), 1);
        assert_eq!((hits[0].line, hits[0].col), (1, 9));
        assert!(run("wall-clock", "/// Instantiates the policy\nfn f() {}\n").is_empty());
        assert!(run("wall-clock", "let s = \"Instant\";\n").is_empty());
    }

    #[test]
    fn method_rule_matches_calls_only() {
        assert_eq!(run("panic-unwrap", "x.unwrap();\n").len(), 1);
        assert_eq!(run("panic-unwrap", "x . unwrap ();\n").len(), 1);
        assert!(run("panic-unwrap", "x.unwrap_or(0);\n").is_empty());
        assert!(run("panic-unwrap", "fn unwrap(x: u8) {}\n").is_empty());
    }

    #[test]
    fn macro_rule_requires_bang() {
        assert_eq!(run("panic-macro", "panic!(\"boom\");\n").len(), 1);
        assert!(run("panic-macro", "fn panic_handler() {}\n").is_empty());
        assert!(run("panic-macro", "let panic = 3;\n").is_empty());
        assert!(run("panic-macro", "debug_assert!(x);\n").is_empty());
    }

    #[test]
    fn test_code_is_exempt_where_configured() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); }\n}\n";
        assert!(run("panic-unwrap", src).is_empty());
        // ...but not for wall-clock, which applies to tests too.
        let src2 = "#[cfg(test)]\nmod tests {\n    fn f() { Instant::now(); }\n}\n";
        assert_eq!(run("wall-clock", src2).len(), 1);
    }

    #[test]
    fn hash_iter_flags_mentions_and_iteration() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) {\n    \
                   for k in m.keys() { g(k); }\n    let v = vec![1];\n    v.sort();\n}\n";
        let hits = run("nondeterministic-iter", src);
        let lines: Vec<usize> = hits.iter().map(|h| h.line).collect();
        assert!(lines.contains(&1) && lines.contains(&2) && lines.contains(&3));
    }

    #[test]
    fn hash_iter_silent_without_mentions() {
        assert!(run(
            "nondeterministic-iter",
            "fn f(v: &[u32]) { v.iter().sum::<u32>(); }\n"
        )
        .is_empty());
    }

    #[test]
    fn field_arith_flags_guarded_fields_only() {
        let hits = run(
            "unchecked-arith",
            "fn f(&mut self) { self.interval += 1; }\n",
        );
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("`+=`") && hits[0].message.contains("`interval`"));
        // Unguarded names, saturating calls, and unary signs stay silent.
        assert!(run("unchecked-arith", "fn f() { count += 1; }\n").is_empty());
        assert!(run(
            "unchecked-arith",
            "fn f(&mut self) { self.interval = self.interval.saturating_add(1); }\n"
        )
        .is_empty());
        assert!(run("unchecked-arith", "let x = -interval;\n").is_empty());
    }

    #[test]
    fn field_arith_walks_paths_and_checks_both_sides() {
        // Binary subtraction through a method-call + index path.
        let hits = run(
            "unchecked-arith",
            "let left = self.debts.cumulative_deliveries - s;\n",
        );
        assert_eq!(hits.len(), 1);
        // Guarded field on the right-hand side of a binary op.
        assert_eq!(
            run("unchecked-arith", "let k = 1 + self.intervals;\n").len(),
            1
        );
        // Exempt in test code.
        assert!(run(
            "unchecked-arith",
            "#[cfg(test)]\nmod tests {\n    fn f(s: &mut S) { s.interval += 1; }\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn nanos_arith_flags_raw_ops_on_unwrapped_values() {
        let hits = run(
            "nanos-raw-arith",
            "let slack = deadline.as_nanos() - elapsed;\n",
        );
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("`-`") && hits[0].message.contains("as_nanos"));
        // Guarded accessor on the right-hand side, through a field path.
        assert_eq!(
            run(
                "nanos-raw-arith",
                "let t = slots * self.deadline.as_nanos();\n"
            )
            .len(),
            1
        );
        // Compound assignments feed from the right.
        assert_eq!(run("nanos-raw-arith", "total += t.as_nanos();\n").len(), 1);
        // One finding per operator even with guarded paths on both sides.
        assert_eq!(
            run("nanos-raw-arith", "let d = a.as_nanos() - b.as_nanos();\n").len(),
            1
        );
    }

    #[test]
    fn nanos_arith_allows_checked_chains_casts_and_tests() {
        // Chaining a checked method: the path no longer ends in the raw
        // accessor.
        assert!(run("nanos-raw-arith", "let q = t.as_nanos().checked_div(n);\n").is_empty());
        assert!(run("nanos-raw-arith", "let m = 1 + t.as_nanos().max(1);\n").is_empty());
        // An explicit cast marks deliberate raw-domain arithmetic.
        assert!(run("nanos-raw-arith", "let w = t.as_nanos() as u128 + 1;\n").is_empty());
        assert!(run("nanos-raw-arith", "let w = 1 + t.as_nanos() as u128;\n").is_empty());
        // Nanos-domain arithmetic and unguarded accessors stay silent.
        assert!(run("nanos-raw-arith", "let d = a.saturating_sub(b);\n").is_empty());
        assert!(run("nanos-raw-arith", "let u = x.as_micros() / 2;\n").is_empty());
        // Exempt in test code.
        assert!(run(
            "nanos-raw-arith",
            "#[cfg(test)]\nmod tests {\n    fn f() { let x = t.as_nanos() % 4000; }\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn float_accum_needs_unordered_source_and_float_terminal() {
        let bad = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, f64>) -> f64 {\n    \
                   m.values().sum::<f64>()\n}\n";
        let hits = run("float-accum-unordered", bad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 3);
        // Integer sums, ordered collections, and slices are fine.
        assert!(run(
            "float-accum-unordered",
            "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u64>) -> u64 { m.values().sum::<u64>() }\n"
        )
        .is_empty());
        assert!(run(
            "float-accum-unordered",
            "use std::collections::BTreeMap;\nfn f(m: &BTreeMap<u32, f64>) -> f64 { m.values().sum::<f64>() }\n"
        )
        .is_empty());
        assert!(run(
            "float-accum-unordered",
            "fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>() }\n"
        )
        .is_empty());
    }

    #[test]
    fn float_accum_covers_fold_and_multiline_chains() {
        let bad = "use std::collections::HashSet;\n\
                   fn f(s: &HashSet<u64>) -> f64 {\n    \
                   s.iter()\n        .map(|&x| x as f64)\n        .fold(0.0, |a, b| a + b)\n}\n";
        let hits = run("float-accum-unordered", bad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 5);
    }

    #[test]
    fn path_call_matches_across_whitespace_and_skips_docs() {
        assert_eq!(
            run("scenario-boundary", "let b = Network::builder();\n").len(),
            1
        );
        assert_eq!(
            run("scenario-boundary", "let b = Network ::\n    builder ();\n").len(),
            1
        );
        assert!(run(
            "scenario-boundary",
            "/// Use [`Network::builder`].\nfn f() {}\n"
        )
        .is_empty());
        assert!(run("scenario-boundary", "let b = scenario.to_builder();\n").is_empty());
    }

    #[test]
    fn sync_path_flags_raw_primitives_only_at_path_starts() {
        assert_eq!(
            run("raw-sync-primitive", "use std::sync::Mutex;\n").len(),
            1
        );
        assert_eq!(
            run("raw-sync-primitive", "let h = std::thread::spawn(f);\n").len(),
            1
        );
        // Paths match across line breaks, like other syntactic rules.
        assert_eq!(
            run(
                "raw-sync-primitive",
                "let a = std ::\n    sync::atomic::AtomicUsize::new(0);\n"
            )
            .len(),
            1
        );
        // `foo::std::sync` is not the std crate, and unlisted std::thread
        // items (sleep, available_parallelism) stay silent.
        assert!(run("raw-sync-primitive", "foo::std::sync::x();\n").is_empty());
        assert!(run("raw-sync-primitive", "std::thread::sleep(d);\n").is_empty());
        // Docs and test code are exempt.
        assert!(run(
            "raw-sync-primitive",
            "/// Uses std::sync::Mutex.\nfn f() {}\n"
        )
        .is_empty());
        assert!(run(
            "raw-sync-primitive",
            "#[cfg(test)]\nmod tests {\n    use std::sync::Mutex;\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn relaxed_ordering_needs_the_ordering_path() {
        let hits = run(
            "relaxed-ordering-audit",
            "x.fetch_add(1, Ordering::Relaxed);\n",
        );
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("Relaxed"));
        assert!(run("relaxed-ordering-audit", "x.load(Ordering::SeqCst);\n").is_empty());
        // A bare `Relaxed` identifier is not an atomic ordering.
        assert!(run("relaxed-ordering-audit", "let mode = Relaxed;\n").is_empty());
        assert!(run(
            "relaxed-ordering-audit",
            "#[cfg(test)]\nmod tests {\n    fn f() { x.load(Ordering::Relaxed); }\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn lock_loop_fires_on_a_guard_held_across_sibling_locks() {
        let bad = "fn f() {\n    let mut own = ranges[w].lock();\n    \
                   for v in 0..n {\n        let other = ranges[v].lock();\n    }\n}\n";
        let hits = run("lock-in-loop-hold", bad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 4);
        assert!(hits[0].message.contains("line 2"));
    }

    #[test]
    fn lock_loop_allows_scoped_dropped_and_expression_guards() {
        // Guard scoped out in a block before the loop.
        let scoped = "fn f() {\n    let i = {\n        let mut own = ranges[w].lock();\n        \
                      own.pop()\n    };\n    for v in 0..n {\n        \
                      let other = ranges[v].lock();\n    }\n}\n";
        assert!(run("lock-in-loop-hold", scoped).is_empty());
        // Explicit drop before the loop.
        let dropped = "fn f() {\n    let own = ranges[w].lock();\n    drop(own);\n    \
                       for v in 0..n {\n        let o = ranges[v].lock();\n    }\n}\n";
        assert!(run("lock-in-loop-hold", dropped).is_empty());
        // Temporary guard (no binding) drops at the semicolon.
        let expr = "fn f() {\n    ranges[w].lock().pop();\n    \
                    for v in 0..n {\n        let o = ranges[v].lock();\n    }\n}\n";
        assert!(run("lock-in-loop-hold", expr).is_empty());
        // Un-indexed locks never fire: a single shared mutex cannot form
        // the symmetric cycle.
        let plain = "fn f() {\n    let g = state.lock();\n    \
                     for v in 0..n {\n        let o = state.lock();\n    }\n}\n";
        assert!(run("lock-in-loop-hold", plain).is_empty());
    }

    #[test]
    fn index_rule_flags_expressions_not_types() {
        let hits = run("direct-index", "let x = data[i];\n");
        assert_eq!(hits.len(), 1);
        assert!(run("direct-index", "let x: [u8; 4] = y;\n").is_empty());
        assert!(run("direct-index", "#[derive(Debug)]\nstruct S;\n").is_empty());
        assert!(run("direct-index", "let s = &v[..];\n").len() == 1); // slicing counts
    }
}
