//! Regenerates Fig. 8 (asymmetric network, group deficiency vs delivery
//! ratio at α* = 0.7). Usage: `fig8 [--quick | --intervals N]`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let intervals = rtmac_bench::intervals_from_args(&args, 5000);
    eprintln!("running Fig. 8 with {intervals} intervals per point...");
    let table = rtmac_bench::figures::fig8(intervals, 2018);
    print!("{}", table.render());
    table.write_csv("bench_results", "fig8").expect("write csv");
}
