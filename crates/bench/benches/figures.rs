//! Criterion benches — one per paper figure. Each measures a reduced-size
//! version of the figure's workload (the full-length series come from the
//! `figN` binaries); together they track the cost of regenerating the
//! evaluation and catch performance regressions in the engines.

use criterion::{criterion_group, criterion_main, Criterion};
use rtmac_bench::figures;
use std::hint::black_box;

const INTERVALS: usize = 20;

fn bench_fig3(c: &mut Criterion) {
    c.bench_function("fig3_symmetric_video_sweep", |b| {
        b.iter(|| black_box(figures::fig3(INTERVALS, 1)))
    });
}

fn bench_fig4(c: &mut Criterion) {
    c.bench_function("fig4_delivery_ratio_sweep", |b| {
        b.iter(|| black_box(figures::fig4(INTERVALS, 1)))
    });
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("fig5_convergence_tracking", |b| {
        b.iter(|| black_box(figures::fig5(INTERVALS * 5, 1)))
    });
}

fn bench_fig6(c: &mut Criterion) {
    c.bench_function("fig6_fixed_priority_profile", |b| {
        b.iter(|| black_box(figures::fig6(INTERVALS * 5, 1)))
    });
}

fn bench_fig7(c: &mut Criterion) {
    c.bench_function("fig7_asymmetric_alpha_sweep", |b| {
        b.iter(|| black_box(figures::fig7(INTERVALS, 1)))
    });
}

fn bench_fig8(c: &mut Criterion) {
    c.bench_function("fig8_asymmetric_ratio_sweep", |b| {
        b.iter(|| black_box(figures::fig8(INTERVALS, 1)))
    });
}

fn bench_fig9(c: &mut Criterion) {
    c.bench_function("fig9_control_lambda_sweep", |b| {
        b.iter(|| black_box(figures::fig9(INTERVALS * 5, 1)))
    });
}

fn bench_fig10(c: &mut Criterion) {
    c.bench_function("fig10_control_ratio_sweep", |b| {
        b.iter(|| black_box(figures::fig10(INTERVALS * 5, 1)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig3, bench_fig4, bench_fig5, bench_fig6, bench_fig7,
              bench_fig8, bench_fig9, bench_fig10
}
criterion_main!(benches);
