//! # rtmac-bench
//!
//! The benchmark harness that regenerates every figure of the paper's
//! evaluation (Section VI) plus the ablations called out in DESIGN.md.
//!
//! * [`figures`] — one parameterized runner per paper figure (Figs. 3–10),
//!   each returning a [`table::SeriesTable`] with the same series the paper
//!   plots. The `fig3`..`fig10` binaries print them and write CSVs under
//!   `bench_results/`.
//! * [`table`] — tiny text/CSV table rendering.
//! * [`kernel`] — interval-kernel and Runner throughput measurement behind
//!   the `bench_kernel` binary and `bench_results/BENCH_kernel.json`.
//!
//! Run a full reproduction with
//! `cargo run --release -p rtmac-bench --bin all_figures`.

pub mod figures;
pub mod kernel;
pub mod table;

/// Maps `f` over `items` on the default [`rtmac::Runner`] worker pool (one
/// worker per CPU, shared work queue). The figure sweeps use it to run
/// independent simulation points concurrently — results come back in input
/// order, so output is identical to the sequential run regardless of the
/// worker count.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    rtmac::Runner::default().map(items, f)
}

/// Parses `--intervals N` and `--quick` from a binary's argument list,
/// returning the interval count to simulate (defaults to `full`; `--quick`
/// selects `full / 20`, handy for smoke runs).
#[must_use]
pub fn intervals_from_args(args: &[String], full: usize) -> usize {
    let mut intervals = full;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => intervals = (full / 20).max(50),
            "--intervals" => {
                if let Some(v) = it.next() {
                    if let Ok(n) = v.parse::<usize>() {
                        intervals = n;
                    }
                }
            }
            _ => {}
        }
    }
    intervals
}

/// Runs `metric` once per seed (in parallel) and returns the sample mean
/// and standard deviation — replication bands for any figure point.
pub fn replicate<F>(seeds: std::ops::Range<u64>, metric: F) -> (f64, f64)
where
    F: Fn(u64) -> f64 + Sync,
{
    let values = parallel_map(seeds.collect::<Vec<u64>>(), metric);
    let mut stats = rtmac_model::metrics::RunningStats::new();
    for v in values {
        stats.push(v);
    }
    (stats.mean(), stats.std_dev())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| (*x).to_string()).collect()
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..16).collect(), |x: i32| x * x);
        assert_eq!(out, (0..16).map(|x| x * x).collect::<Vec<i32>>());
    }

    #[test]
    fn replicate_reports_mean_and_spread() {
        let (mean, std) = replicate(0..8, |seed| seed as f64);
        assert!((mean - 3.5).abs() < 1e-12);
        assert!(std > 2.0 && std < 3.0);
        // Deterministic metric: zero spread.
        let (m, s) = replicate(0..4, |_| 7.0);
        assert_eq!((m, s), (7.0, 0.0));
    }

    #[test]
    fn replicated_simulation_point_is_stable() {
        // The Fig. 9 point (λ = 0.6, feasible): deficiency ~0 across seeds.
        let (mean, std) = replicate(0..4, |seed| {
            crate::figures::run_control(4, 0.6, 0.7, 0.9, rtmac::PolicySpec::Ldf, 200, seed)
                .final_total_deficiency
        });
        assert!(mean < 0.1, "mean {mean}");
        assert!(std < 0.1, "std {std}");
    }

    #[test]
    fn default_is_full() {
        assert_eq!(intervals_from_args(&args(&[]), 5000), 5000);
    }

    #[test]
    fn quick_divides_by_twenty() {
        assert_eq!(intervals_from_args(&args(&["--quick"]), 5000), 250);
        assert_eq!(intervals_from_args(&args(&["--quick"]), 100), 50);
    }

    #[test]
    fn explicit_intervals_win() {
        assert_eq!(
            intervals_from_args(&args(&["--intervals", "123"]), 5000),
            123
        );
        assert_eq!(
            intervals_from_args(&args(&["--intervals", "bogus"]), 5000),
            5000
        );
    }
}
