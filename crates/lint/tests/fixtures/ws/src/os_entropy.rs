//! Fixture: the os-entropy rule.

/// Pulls OS entropy — forbidden outside the audited RNG module.
pub fn seed_from_os() {
    let _rng = rand::thread_rng();
    let _other = SmallRng::from_entropy();
}
