//! Command execution: turns parsed options into [`Scenario`]s, runs them,
//! and formats the results.

use std::fmt::Write as _;

use rtmac::scenario::{Param, Scenario, TrafficSpec};
use rtmac::sim::Nanos;
use rtmac::{RunReport, Runner};
use rtmac_traffic::{ArrivalProcess, BernoulliArrivals, BurstUniform, ConstantArrivals};

use crate::args::{
    ArrivalSpec, CliError, Command, EmulateOpts, NetworkOpts, PolicySpec, SweepParam,
};

const USAGE: &str = "rtmac — real-time wireless MAC simulator (Hsieh & Hou, ICDCS 2018)

Usage:
  rtmac run      [--scenario NAME | network flags]
                 --policy <db-dp|ldf|eldf|fcsma|dcf|frame-csma>
  rtmac compare  [--scenario NAME | network flags]
  rtmac sweep    [--scenario NAME | network flags] --param <alpha|lambda|ratio|p>
                 --from X --to Y [--steps N] [--progress]
  rtmac timeline [network flags]   (ASCII protocol trace, <= 10 intervals)
  rtmac emulate  [--scenario NAME|FILE] [--links N] [--intervals K] [--seed S]
                 [--transport loopback|udp] [--processes [--netd PATH]]
                 [--realtime] [--timeout-ms T] [--report FILE] [--check-replay]
  rtmac netd     <rtmac-netd flags>   (one link over UDP; see OPERATIONS.md)
  rtmac help

Scenarios:
  --scenario NAME    named workload: video20, control10, asym, tiny, or a
                     robustness scenario — bursty, hidden-terminal,
                     poisson-churn, overload-admission (DB-DP degraded
                     engine; run/compare report fault and admission
                     counters). Composes with --intervals, --seed, and
                     --policy; conflicts with the network flags below.

Network flags (defaults in parentheses; prefer --scenario for the paper's
workloads — these stay supported for custom networks):
  --links N          number of fully-interfering links (10)
  --deadline-ms T    per-packet deadline in ms (20); or --deadline-us T
  --payload B        data payload bytes (1500)
  --p P              uniform channel success probability (0.7)
  --arrivals SPEC    burst:ALPHA | bernoulli:LAMBDA | constant (burst:0.5)
  --ratio R          required delivery ratio (0.9)
  --intervals K      intervals to simulate (1000)
  --seed S           RNG seed (0)
  --engine E         DP interval kernel for DB-DP runs: timeline | batched
                     (timeline). `batched` is the massive-N kernel —
                     bit-identical results, O(min(N, deadline/slot)) per
                     interval.

Sweep flags:
  --progress         live completed/total and items/sec on stderr while
                     the sweep's (point x contender) grid runs

Emulate flags (one lockstep node per link on this box; OPERATIONS.md has
the full walkthrough):
  --transport T      loopback (in-memory, default) or udp (localhost sockets)
  --processes        one real rtmac-netd OS process per link over UDP
  --netd PATH        rtmac-netd binary for --processes (default: next to rtmac)
  --realtime         pace nodes at the scenario's deadline rate
  --timeout-ms T     per-node peer-silence budget (30000)
  --report FILE      write a key=value measurement report
  --check-replay     also run the transport-free sim; fail on any
                     decision-trace fingerprint difference

Examples:
  rtmac run --scenario video20
  rtmac run --links 20 --arrivals burst:0.55 --policy db-dp --intervals 5000
  rtmac sweep --scenario control10 --param lambda --from 0.5 --to 0.9 --steps 9
  rtmac emulate --scenario control10 --links 100 --intervals 200 --check-replay
";

fn arrivals_box(spec: ArrivalSpec, links: usize) -> Result<Box<dyn ArrivalProcess>, CliError> {
    let to_cli = |e: rtmac::model::ConfigError| CliError::Invalid(e.to_string());
    Ok(match spec {
        ArrivalSpec::Burst(alpha) => {
            Box::new(BurstUniform::symmetric(links, alpha, 6).map_err(to_cli)?)
        }
        ArrivalSpec::Bernoulli(lambda) => {
            Box::new(BernoulliArrivals::symmetric(links, lambda).map_err(to_cli)?)
        }
        ArrivalSpec::Constant => Box::new(ConstantArrivals::one_each(links).map_err(to_cli)?),
    })
}

fn run_scenario(sc: &Scenario) -> Result<RunReport, CliError> {
    sc.run().map_err(|e| CliError::Invalid(e.to_string()))
}

fn simulate(opts: &NetworkOpts, policy: PolicySpec) -> Result<RunReport, CliError> {
    run_scenario(&opts.to_scenario(policy)?)
}

fn render_run(sc: &Scenario, report: &RunReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "policy: {}", report.policy);
    let p = sc
        .success
        .uniform_value()
        .map_or_else(|| "per-link".to_string(), |p| p.to_string());
    let _ = writeln!(
        out,
        "network: {} ({} links, deadline {}, {} B payload, p = {}, {} intervals)",
        sc.name,
        sc.links,
        Nanos::from_micros(sc.deadline_us),
        sc.payload_bytes,
        p,
        report.intervals
    );
    let _ = writeln!(
        out,
        "total timely-throughput deficiency: {:.4}",
        report.final_total_deficiency
    );
    let _ = writeln!(
        out,
        "collisions: {}   idle slots: {}   empty packets: {}",
        report.collisions, report.idle_slots, report.empty_packets
    );
    if let Some(fault) = &report.fault {
        let mean = fault
            .mean_time_to_reconverge()
            .map_or_else(|| "n/a".to_string(), |m| format!("{m:.1}"));
        let _ = writeln!(
            out,
            "faults: {} sensing flips   {} divergences   {} fallbacks   \
             {} reconvergences (mean {mean} intervals)",
            fault.sensing_flips, fault.divergences, fault.fallbacks, fault.reconvergences
        );
    }
    if let Some(adm) = &report.admission {
        let _ = writeln!(
            out,
            "admission: {}/{} links admitted   {} accepted   {} rejected   \
             {} shed   peak utilization {:.3}",
            adm.admitted_count(),
            adm.admitted.len(),
            adm.accepted,
            adm.rejected,
            adm.shed,
            adm.peak_utilization
        );
    }
    let _ = writeln!(
        out,
        "{:>8} {:>12} {:>10} {:>10}",
        "link", "throughput", "debt", "attempts"
    );
    for (i, tp) in report.per_link_throughput.iter().enumerate() {
        let _ = writeln!(
            out,
            "{i:>8} {tp:>12.4} {:>10.2} {:>10}",
            report.final_debts[i], report.attempts[i]
        );
    }
    out
}

fn contenders() -> [PolicySpec; 3] {
    [PolicySpec::db_dp(), PolicySpec::Ldf, PolicySpec::Fcsma]
}

fn render_compare(opts: &NetworkOpts) -> Result<String, CliError> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>8} {:>12} {:>12} {:>12} {:>14}",
        "policy", "deficiency", "collisions", "idle slots", "empty packets"
    );
    for spec in contenders() {
        let report = simulate(opts, spec)?;
        let _ = writeln!(
            out,
            "{:>8} {:>12.4} {:>12} {:>12} {:>14}",
            spec.label(),
            report.final_total_deficiency,
            report.collisions,
            report.idle_slots,
            report.empty_packets
        );
    }
    Ok(out)
}

/// Overrides the swept field on a scenario. The sweep replaces the arrival
/// process outright for `alpha`/`lambda` (matching the historical flag
/// semantics), so it applies uniformly even to per-link scenarios.
fn apply_sweep(mut sc: Scenario, param: SweepParam, value: f64) -> Scenario {
    match param {
        SweepParam::Alpha => {
            sc.traffic = TrafficSpec::Burst {
                alpha: Param::Uniform(value),
                burst_max: 6,
            };
        }
        SweepParam::Lambda => {
            sc.traffic = TrafficSpec::Bernoulli {
                lambda: Param::Uniform(value),
            };
        }
        SweepParam::Ratio => sc.ratio = Param::Uniform(value),
        SweepParam::SuccessProbability => sc.success = Param::Uniform(value),
    }
    sc
}

fn render_sweep(
    opts: &NetworkOpts,
    param: SweepParam,
    from: f64,
    to: f64,
    steps: usize,
    progress: bool,
) -> Result<String, CliError> {
    let name = match param {
        SweepParam::Alpha => "alpha",
        SweepParam::Lambda => "lambda",
        SweepParam::Ratio => "ratio",
        SweepParam::SuccessProbability => "p",
    };
    let values: Vec<f64> = (0..steps)
        .map(|i| {
            if steps == 1 {
                from
            } else {
                from + (to - from) * i as f64 / (steps - 1) as f64
            }
        })
        .collect();
    // One scenario per (point, contender), fanned over the worker pool;
    // results come back in input order, so the table is deterministic.
    let mut jobs = Vec::with_capacity(values.len() * contenders().len());
    for &value in &values {
        for spec in contenders() {
            jobs.push(apply_sweep(opts.to_scenario(spec)?, param, value));
        }
    }
    let reports = if progress {
        // lint: allow(wall-clock) — items/sec display on an interactive
        // progress line; never feeds back into simulation state.
        let started = std::time::Instant::now();
        let reports = Runner::default().map_with_progress(
            jobs,
            |sc| run_scenario(&sc),
            move |done, total| {
                let rate = done as f64 / started.elapsed().as_secs_f64().max(1e-9);
                eprint!("\rsweep: {done}/{total} scenarios ({rate:.1}/s)");
                if done == total {
                    eprintln!();
                }
            },
        );
        reports
    } else {
        Runner::default().map(jobs, |sc| run_scenario(&sc))
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{name:>12} {:>12} {:>12} {:>12}",
        "DB-DP", "LDF", "FCSMA"
    );
    let mut reports = reports.into_iter();
    for value in values {
        let _ = write!(out, "{value:>12.4}");
        for _ in contenders() {
            let report = reports.next().expect("one report per job")?;
            let _ = write!(out, " {:>12.4}", report.final_total_deficiency);
        }
        let _ = writeln!(out);
    }
    Ok(out)
}

fn render_timeline(opts: &NetworkOpts) -> Result<String, CliError> {
    use rtmac::mac::{timeline, DpConfig, DpEngine, MacTiming};
    use rtmac::phy::{channel::Bernoulli, PhyProfile};
    use rtmac::sim::SeedStream;

    let timing = MacTiming::new(
        PhyProfile::ieee80211a(),
        Nanos::from_micros(opts.deadline_us),
        opts.payload,
    );
    let mut engine = DpEngine::new(DpConfig::new(timing.clone()).with_trace(true), opts.links);
    let mut channel =
        Bernoulli::new(vec![opts.p; opts.links]).map_err(|e| CliError::Invalid(e.to_string()))?;
    let mut arrivals = arrivals_box(opts.arrivals, opts.links)?;
    let seeds = SeedStream::new(opts.seed);
    let mut rng = seeds.rng(2);
    let mut arr_rng = seeds.rng(1);
    let mu = vec![0.5; opts.links];

    let mut out = String::new();
    let _ = writeln!(
        out,
        "DP protocol timelines (constant mu = 0.5; # data, e empty claim, \u{b7} idle)\n"
    );
    let mut buf = Vec::new();
    for k in 0..opts.intervals.clamp(1, 10) {
        arrivals.sample(&mut arr_rng, &mut buf);
        let report = engine.run_interval(&buf, &mu, &mut channel, &mut rng);
        let _ = writeln!(
            out,
            "interval {k}: sigma = {}  C = {:?}  swaps = {}",
            engine.sigma(),
            report.candidates,
            report.swaps.len()
        );
        let _ = write!(
            out,
            "{}",
            timeline::render(&report.trace, &timing, opts.links, 100)
        );
        let _ = writeln!(out);
    }
    Ok(out)
}

fn net_err(e: rtmac_net::NetError) -> CliError {
    CliError::Invalid(e.to_string())
}

fn render_emulation(report: &rtmac_net::EmulationReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "emulation: {} link(s) x {} interval(s) over {}",
        report.links, report.intervals, report.backend
    );
    let _ = writeln!(
        out,
        "decision-trace fingerprint: {:#018x}",
        report.fingerprint
    );
    let _ = writeln!(
        out,
        "wall-clock deadline misses: {} of {} link-intervals ({:.4}%)",
        report.misses,
        report.links * report.intervals,
        report.miss_rate * 100.0
    );
    let _ = writeln!(
        out,
        "interval wall time: mean {} us, max {} us (deadline budget per interval)",
        report.mean_interval.as_micros(),
        report.max_interval.as_micros()
    );
    let _ = writeln!(
        out,
        "protocol outcome: total deficiency {:.4}, {} collision(s), {} empty packet(s)",
        report.run.final_total_deficiency, report.run.collisions, report.run.empty_packets
    );
    out
}

fn render_emulation_kv(report: &rtmac_net::EmulationReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "backend={}", report.backend);
    let _ = writeln!(out, "links={}", report.links);
    let _ = writeln!(out, "intervals={}", report.intervals);
    let _ = writeln!(out, "fingerprint={:#018x}", report.fingerprint);
    let _ = writeln!(out, "misses={}", report.misses);
    let _ = writeln!(out, "miss_rate={}", report.miss_rate);
    let _ = writeln!(out, "max_interval_us={}", report.max_interval.as_micros());
    let _ = writeln!(out, "mean_interval_us={}", report.mean_interval.as_micros());
    let _ = writeln!(out, "deficiency={}", report.run.final_total_deficiency);
    let _ = writeln!(out, "collisions={}", report.run.collisions);
    let _ = writeln!(out, "empty_packets={}", report.run.empty_packets);
    let _ = writeln!(
        out,
        "per_link_misses={}",
        report
            .per_link_misses
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",")
    );
    out
}

fn run_emulate(opts: &EmulateOpts) -> Result<String, CliError> {
    let mut sc = rtmac_net::scenario_file::load(&opts.scenario).map_err(net_err)?;
    if let Some(links) = opts.links {
        sc = sc.with_links(links);
    }
    if let Some(seed) = opts.seed {
        sc = sc.with_seed(seed);
    }
    if let Some(engine) = opts.engine {
        sc = sc.with_engine(engine);
    }
    let intervals = opts.intervals.unwrap_or(sc.intervals);
    let mut cfg = rtmac_net::EmulationConfig::new(sc.clone(), intervals);
    cfg.transport = opts.transport;
    cfg.realtime = opts.realtime;
    cfg.sync_timeout = std::time::Duration::from_millis(opts.timeout_ms);
    let report = if opts.processes {
        let netd = opts
            .netd
            .clone()
            .map_or_else(rtmac_net::default_netd_path, std::path::PathBuf::from);
        rtmac_net::run_emulation_processes(&cfg, &netd).map_err(net_err)?
    } else {
        rtmac_net::run_emulation(&cfg).map_err(net_err)?
    };
    let mut out = render_emulation(&report);
    if opts.check_replay {
        let sim = rtmac_net::sim_trace(&sc, intervals).map_err(net_err)?;
        if sim.fingerprint != report.fingerprint {
            return Err(CliError::Invalid(format!(
                "replay contract violated: sim fingerprint {:#018x} != {} fingerprint {:#018x}",
                sim.fingerprint, report.backend, report.fingerprint
            )));
        }
        let _ = writeln!(
            out,
            "replay contract: {} decision trace matches the sim, byte for byte",
            report.backend
        );
    }
    if let Some(path) = &opts.report {
        std::fs::write(path, render_emulation_kv(&report))
            .map_err(|e| CliError::Invalid(format!("cannot write report {path}: {e}")))?;
    }
    Ok(out)
}

fn run_netd(args: &[String]) -> Result<String, CliError> {
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        return Ok(rtmac_net::netd::USAGE.to_string());
    }
    let opts = rtmac_net::netd::parse(args).map_err(net_err)?;
    let report = rtmac_net::netd::run(&opts).map_err(net_err)?;
    Ok(rtmac_net::netd::render_report(&report))
}

/// Executes a parsed [`Command`] and returns its printable output.
///
/// # Errors
///
/// Returns a [`CliError::Invalid`] when the simulator rejects the
/// configuration.
pub fn execute(command: Command) -> Result<String, CliError> {
    match command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Run { opts, policy } => {
            let sc = opts.to_scenario(policy)?;
            let report = run_scenario(&sc)?;
            Ok(render_run(&sc, &report))
        }
        Command::Compare { opts } => render_compare(&opts),
        Command::Sweep {
            opts,
            param,
            from,
            to,
            steps,
            progress,
        } => render_sweep(&opts, param, from, to, steps, progress),
        Command::Timeline { opts } => render_timeline(&opts),
        Command::Emulate { opts } => run_emulate(&opts),
        Command::Netd { args } => run_netd(&args),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> NetworkOpts {
        NetworkOpts {
            scenario: None,
            links: 3,
            deadline_us: 2000,
            payload: 100,
            p: 0.8,
            arrivals: ArrivalSpec::Bernoulli(0.7),
            ratio: 0.9,
            intervals: 100,
            seed: 1,
            engine: rtmac::scenario::EngineSpec::Timeline,
        }
    }

    #[test]
    fn run_report_lists_every_link() {
        let sc = quick_opts().to_scenario(PolicySpec::Ldf).unwrap();
        let report = run_scenario(&sc).unwrap();
        let text = render_run(&sc, &report);
        for i in 0..3 {
            assert!(
                text.contains(&format!("\n{i:>8} ")),
                "missing link {i}:\n{text}"
            );
        }
    }

    #[test]
    fn named_scenario_runs_end_to_end() {
        let mut opts = quick_opts();
        opts.scenario = Some("tiny".to_string());
        opts.intervals = 50;
        let sc = opts.to_scenario(PolicySpec::Ldf).unwrap();
        assert_eq!((sc.name, sc.intervals), ("tiny", 50));
        let report = run_scenario(&sc).unwrap();
        assert_eq!(report.intervals, 50);
        assert!(render_run(&sc, &report).contains("tiny"));
    }

    #[test]
    fn robustness_scenario_reports_fault_and_admission_counters() {
        let mut opts = quick_opts();
        opts.scenario = Some("overload-admission".to_string());
        opts.intervals = 200;
        let sc = opts.to_scenario(PolicySpec::db_dp()).unwrap();
        let report = run_scenario(&sc).unwrap();
        let text = render_run(&sc, &report);
        assert!(text.contains("faults:"), "missing fault line:\n{text}");
        assert!(
            text.contains("admission:"),
            "missing admission line:\n{text}"
        );
        // Pristine runs keep the historical report shape.
        let sc = quick_opts().to_scenario(PolicySpec::db_dp()).unwrap();
        let text = render_run(&sc, &run_scenario(&sc).unwrap());
        assert!(!text.contains("faults:"));
        assert!(!text.contains("admission:"));
    }

    #[test]
    fn invalid_configuration_is_reported() {
        let mut opts = quick_opts();
        opts.p = 1.5;
        assert!(matches!(
            simulate(&opts, PolicySpec::Ldf),
            Err(CliError::Invalid(_))
        ));
        let mut opts = quick_opts();
        opts.links = 0;
        assert!(simulate(&opts, PolicySpec::db_dp()).is_err());
    }

    #[test]
    fn sweep_single_step_uses_from() {
        let out = render_sweep(&quick_opts(), SweepParam::Ratio, 0.85, 0.99, 1, false).unwrap();
        assert!(out.contains("0.8500"));
        assert!(!out.contains("0.9900"));
    }

    #[test]
    fn sweep_endpoints_inclusive() {
        let out = render_sweep(
            &quick_opts(),
            SweepParam::SuccessProbability,
            0.5,
            0.9,
            3,
            false,
        )
        .unwrap();
        assert!(out.contains("0.5000") && out.contains("0.7000") && out.contains("0.9000"));
    }

    #[test]
    fn sweep_overrides_per_link_scenarios_uniformly() {
        let sc = apply_sweep(
            rtmac::scenario::by_name("asym").unwrap(),
            SweepParam::Alpha,
            0.5,
        );
        assert_eq!(
            sc.traffic,
            TrafficSpec::Burst {
                alpha: Param::Uniform(0.5),
                burst_max: 6
            }
        );
    }

    #[test]
    fn emulate_runs_and_checks_replay() {
        let opts = EmulateOpts {
            scenario: "tiny".to_string(),
            intervals: Some(15),
            check_replay: true,
            ..EmulateOpts::default()
        };
        let out = run_emulate(&opts).unwrap();
        assert!(out.contains("3 link(s)"), "{out}");
        assert!(out.contains("replay contract"), "{out}");
        assert!(out.contains("fingerprint"), "{out}");
    }

    #[test]
    fn emulate_reports_unknown_scenarios() {
        let opts = EmulateOpts {
            scenario: "/no/such/scenario".to_string(),
            ..EmulateOpts::default()
        };
        assert!(matches!(run_emulate(&opts), Err(CliError::Invalid(_))));
    }

    #[test]
    fn netd_subcommand_surfaces_usage_and_parse_errors() {
        assert!(run_netd(&[]).unwrap().contains("rtmac-netd"));
        let bad = ["--frobnicate".to_string()];
        assert!(matches!(run_netd(&bad), Err(CliError::Invalid(_))));
    }

    #[test]
    fn every_policy_spec_builds() {
        for spec in [
            PolicySpec::db_dp(),
            PolicySpec::Ldf,
            PolicySpec::eldf(),
            PolicySpec::Fcsma,
            PolicySpec::Dcf,
            PolicySpec::frame_csma(),
        ] {
            assert!(simulate(&quick_opts(), spec).is_ok(), "{spec:?}");
        }
    }
}
