//! Centralized serve-in-priority-order scheduling — the substrate beneath
//! LDF/ELDF (Algorithm 1 of the paper).

use rtmac_model::LinkId;
use rtmac_phy::channel::LossModel;
use rtmac_sim::{Nanos, SimRng};

use crate::{IntervalOutcome, MacTiming};

/// A centralized scheduler: given a priority order for the interval, it
/// serves links one after another with retransmissions until each buffer
/// drains, with zero contention overhead (the paper's "up to 60
/// transmissions in each interval" for LDF).
///
/// An optional per-transmission *polling overhead* models the cost a real
/// access point pays to collect state and issue grants — the coordination
/// cost the paper's introduction argues makes centralized scheduling
/// impractical; it is exercised by the ablation benches.
///
/// # Example
///
/// ```
/// use rtmac_mac::{CentralizedEngine, MacTiming};
/// use rtmac_phy::{channel::Bernoulli, PhyProfile};
/// use rtmac_model::LinkId;
/// use rtmac_sim::{Nanos, SeedStream};
///
/// let timing = MacTiming::new(PhyProfile::ieee80211a(), Nanos::from_millis(20), 1500);
/// let mut engine = CentralizedEngine::new(timing);
/// let mut channel = Bernoulli::reliable(2);
/// let mut rng = SeedStream::new(0).rng(0);
/// let out = engine.run_interval(&[2, 2], &[LinkId::new(0), LinkId::new(1)],
///                               &mut channel, &mut rng);
/// assert_eq!(out.total_deliveries(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct CentralizedEngine {
    timing: MacTiming,
    polling_overhead: Nanos,
}

impl CentralizedEngine {
    /// An idealized centralized scheduler with no polling overhead.
    #[must_use]
    pub fn new(timing: MacTiming) -> Self {
        CentralizedEngine {
            timing,
            polling_overhead: Nanos::ZERO,
        }
    }

    /// Adds a fixed overhead before every transmission (state collection +
    /// grant signalling).
    #[must_use]
    pub fn with_polling_overhead(mut self, overhead: Nanos) -> Self {
        self.polling_overhead = overhead;
        self
    }

    /// The timing context.
    #[must_use]
    pub fn timing(&self) -> &MacTiming {
        &self.timing
    }

    /// Runs one interval, serving links in `order` (highest priority
    /// first). A link is served — retransmitting after each loss — until
    /// its buffer drains, then the next link starts; the interval ends when
    /// the next transmission no longer fits before the deadline.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the links implied by
    /// `arrivals`, or if the channel's link count disagrees.
    pub fn run_interval(
        &mut self,
        arrivals: &[u32],
        order: &[LinkId],
        channel: &mut dyn LossModel,
        rng: &mut SimRng,
    ) -> IntervalOutcome {
        let n = arrivals.len();
        assert_eq!(order.len(), n, "order must list every link exactly once");
        assert_eq!(channel.n_links(), n, "channel link count mismatch");
        let mut seen = vec![false; n];
        for link in order {
            assert!(
                link.index() < n && !seen[link.index()],
                "order must be a permutation of the links"
            );
            seen[link.index()] = true;
        }

        let mut outcome = IntervalOutcome::empty(n);
        let mut now = Nanos::ZERO;
        for &link in order {
            let airtime = self.timing.data_airtime_for(link.index());
            let step = airtime + self.polling_overhead;
            let mut remaining = arrivals[link.index()];
            while remaining > 0 {
                if !self.timing.fits(now, step) {
                    // This link's frames no longer fit; a lower-priority
                    // link with a smaller payload may still squeeze in.
                    break;
                }
                now += step;
                outcome.attempts[link.index()] += 1;
                outcome.busy_time += airtime;
                if channel.attempt(link, rng) {
                    remaining -= 1;
                    outcome.deliveries[link.index()] += 1;
                    outcome.latency_sum[link.index()] += now;
                }
            }
        }
        outcome.leftover = self.timing.deadline().saturating_sub(now);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtmac_phy::channel::Bernoulli;
    use rtmac_phy::PhyProfile;
    use rtmac_sim::SeedStream;

    fn timing() -> MacTiming {
        MacTiming::new(PhyProfile::ieee80211a(), Nanos::from_millis(2), 100)
    }

    fn order(ids: &[usize]) -> Vec<LinkId> {
        ids.iter().copied().map(LinkId::new).collect()
    }

    #[test]
    fn serves_in_order_until_budget_exhausted() {
        // 16 transmissions fit; reliable channel.
        let mut e = CentralizedEngine::new(timing());
        let mut ch = Bernoulli::reliable(3);
        let mut rng = SeedStream::new(1).rng(0);
        let out = e.run_interval(&[10, 10, 10], &order(&[2, 0, 1]), &mut ch, &mut rng);
        assert_eq!(out.deliveries[2], 10);
        assert_eq!(out.deliveries[0], 6);
        assert_eq!(out.deliveries[1], 0);
        assert_eq!(out.total_attempts(), 16);
    }

    #[test]
    fn retries_consume_budget_on_unreliable_channel() {
        let mut e = CentralizedEngine::new(timing());
        let mut ch = Bernoulli::new(vec![0.5]).unwrap();
        let mut rng = SeedStream::new(2).rng(0);
        let out = e.run_interval(&[16], &order(&[0]), &mut ch, &mut rng);
        assert_eq!(out.attempts[0], 16);
        assert!(out.deliveries[0] < 16);
    }

    #[test]
    fn polling_overhead_reduces_capacity() {
        // 118 µs airtime + 42 µs polling = 160 µs per transmission -> 12 fit.
        let mut e = CentralizedEngine::new(timing()).with_polling_overhead(Nanos::from_micros(42));
        let mut ch = Bernoulli::reliable(1);
        let mut rng = SeedStream::new(3).rng(0);
        let out = e.run_interval(&[16], &order(&[0]), &mut ch, &mut rng);
        assert_eq!(out.deliveries[0], 12);
    }

    #[test]
    fn empty_arrivals_do_nothing() {
        let mut e = CentralizedEngine::new(timing());
        let mut ch = Bernoulli::reliable(2);
        let mut rng = SeedStream::new(4).rng(0);
        let out = e.run_interval(&[0, 0], &order(&[0, 1]), &mut ch, &mut rng);
        assert_eq!(out.total_attempts(), 0);
        assert_eq!(out.leftover, Nanos::from_millis(2));
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn duplicate_order_entry_panics() {
        let mut e = CentralizedEngine::new(timing());
        let mut ch = Bernoulli::reliable(2);
        let mut rng = SeedStream::new(5).rng(0);
        let _ = e.run_interval(&[1, 1], &order(&[0, 0]), &mut ch, &mut rng);
    }
}
