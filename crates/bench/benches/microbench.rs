//! Microbenchmarks of the building blocks: one interval of each MAC engine,
//! permutation machinery, and the exact Markov analyses.

use criterion::{criterion_group, criterion_main, Criterion};
use rtmac::mac::{
    CentralizedEngine, DcfConfig, DcfEngine, DpConfig, DpEngine, FcsmaEngine, MacTiming,
};
use rtmac::model::{LinkId, Permutation};
use rtmac::phy::{channel::Bernoulli, PhyProfile};
use rtmac::sim::{Nanos, SeedStream};
use rtmac_analysis::markov::PriorityChain;
use std::hint::black_box;

fn video_timing() -> MacTiming {
    MacTiming::new(PhyProfile::ieee80211a(), Nanos::from_millis(20), 1500)
}

fn bench_dp_interval(c: &mut Criterion) {
    let mut engine = DpEngine::new(DpConfig::new(video_timing()), 20);
    let mut channel = Bernoulli::new(vec![0.7; 20]).unwrap();
    let mut rng = SeedStream::new(1).rng(0);
    let arrivals = vec![3u32; 20];
    let mu = vec![0.5f64; 20];
    c.bench_function("dp_engine_one_interval_n20", |b| {
        b.iter(|| black_box(engine.run_interval(&arrivals, &mu, &mut channel, &mut rng)))
    });
}

fn bench_centralized_interval(c: &mut Criterion) {
    let mut engine = CentralizedEngine::new(video_timing());
    let mut channel = Bernoulli::new(vec![0.7; 20]).unwrap();
    let mut rng = SeedStream::new(2).rng(0);
    let arrivals = vec![3u32; 20];
    let order: Vec<LinkId> = (0..20).map(LinkId::new).collect();
    c.bench_function("centralized_one_interval_n20", |b| {
        b.iter(|| black_box(engine.run_interval(&arrivals, &order, &mut channel, &mut rng)))
    });
}

fn bench_fcsma_interval(c: &mut Criterion) {
    let mut engine = FcsmaEngine::new(video_timing());
    let mut channel = Bernoulli::new(vec![0.7; 20]).unwrap();
    let mut rng = SeedStream::new(3).rng(0);
    let arrivals = vec![3u32; 20];
    let probs = vec![1.0 / 16.0; 20];
    c.bench_function("fcsma_one_interval_n20", |b| {
        b.iter(|| black_box(engine.run_interval(&arrivals, &probs, &mut channel, &mut rng)))
    });
}

fn bench_dcf_interval(c: &mut Criterion) {
    let mut engine = DcfEngine::new(DcfConfig::default(), video_timing());
    let mut channel = Bernoulli::new(vec![0.7; 20]).unwrap();
    let mut rng = SeedStream::new(4).rng(0);
    let arrivals = vec![3u32; 20];
    c.bench_function("dcf_one_interval_n20", |b| {
        b.iter(|| black_box(engine.run_interval(&arrivals, &mut channel, &mut rng)))
    });
}

fn bench_reference_interval(c: &mut Criterion) {
    use rtmac::mac::reference::ReferenceNetwork;
    let mut net = ReferenceNetwork::new(video_timing(), 20);
    let mut channel = Bernoulli::new(vec![0.7; 20]).unwrap();
    let mut rng = SeedStream::new(5).rng(0);
    let arrivals = vec![3u32; 20];
    let xi = vec![true; 20];
    c.bench_function("reference_one_interval_n20", |b| {
        b.iter(|| black_box(net.run_interval(&arrivals, Some(7), &xi, &mut channel, &mut rng)))
    });
}

fn bench_exact_feasibility(c: &mut Criterion) {
    use rtmac_analysis::feasibility::exact_single_arrival_feasibility;
    let q = vec![0.8; 10];
    let p = vec![0.7; 10];
    c.bench_function("exact_feasibility_n10_budget16", |b| {
        b.iter(|| black_box(exact_single_arrival_feasibility(&q, &p, 16)))
    });
}

fn bench_drift_eval(c: &mut Criterion) {
    use rtmac::model::influence::PaperLog;
    use rtmac_analysis::drift::db_dp_drift;
    let influence = PaperLog::default();
    c.bench_function("drift_report_n4", |b| {
        b.iter(|| {
            black_box(db_dp_drift(
                &[4.0, 3.0, 2.0, 1.0],
                &[0.6, 0.9, 0.7, 0.5],
                &influence,
                10.0,
                &[3, 2, 3, 2],
                6,
            ))
        })
    });
}

fn bench_permutation_rank(c: &mut Criterion) {
    let perm = Permutation::from_priorities((1..=12).rev().collect()).unwrap();
    c.bench_function("permutation_rank_unrank_n12", |b| {
        b.iter(|| {
            let r = black_box(&perm).rank();
            black_box(Permutation::from_rank(12, r))
        })
    });
}

fn bench_stationary_closed_form(c: &mut Criterion) {
    let chain = PriorityChain::new(vec![0.3, 0.4, 0.5, 0.6, 0.7], 1.0).unwrap();
    c.bench_function("stationary_closed_form_n5", |b| {
        b.iter(|| black_box(chain.stationary_closed_form()))
    });
}

fn bench_transition_matrix(c: &mut Criterion) {
    let chain = PriorityChain::new(vec![0.3, 0.4, 0.5, 0.6, 0.7], 1.0).unwrap();
    c.bench_function("transition_matrix_n5", |b| {
        b.iter(|| black_box(chain.transition_matrix()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_dp_interval, bench_centralized_interval, bench_fcsma_interval,
              bench_dcf_interval, bench_reference_interval, bench_permutation_rank,
              bench_stationary_closed_form, bench_transition_matrix,
              bench_exact_feasibility, bench_drift_eval
}
criterion_main!(benches);
