//! Parameterized reproductions of Figs. 3–10 of the paper.
//!
//! Every figure is phrased through the [`rtmac::scenario`] registry: the
//! workload and sweep definitions live in `rtmac` itself, and this module
//! only decides which contenders to run at each sweep point and how to lay
//! the results out in a [`SeriesTable`]. The paper's defaults: 5000
//! intervals for the video figures (Figs. 3–8), 20000 for the control
//! figures (Figs. 9–10).

use rtmac::model::LinkId;
use rtmac::scenario::{self, FaultSpec, Param, PolicySpec, Sweep, TrafficSpec};
use rtmac::RunReport;

use crate::table::SeriesTable;

/// The three contenders of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Contender {
    /// The paper's decentralized algorithm.
    DbDp,
    /// The centralized feasibility-optimal reference.
    Ldf,
    /// The discretized Fast-CSMA baseline.
    Fcsma,
}

impl Contender {
    /// All three, in the paper's plotting order.
    pub const ALL: [Contender; 3] = [Contender::DbDp, Contender::Ldf, Contender::Fcsma];

    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Contender::DbDp => "DB-DP",
            Contender::Ldf => "LDF",
            Contender::Fcsma => "FCSMA",
        }
    }

    /// The declarative policy selection (instantiated once per run by the
    /// scenario layer).
    #[must_use]
    pub fn spec(self) -> PolicySpec {
        match self {
            Contender::DbDp => PolicySpec::db_dp(),
            Contender::Ldf => PolicySpec::Ldf,
            Contender::Fcsma => PolicySpec::Fcsma,
        }
    }
}

/// Runs the video workload (20 ms deadline, 1500 B payload, burst-uniform
/// arrivals) with per-link burst probabilities `alpha`, success
/// probabilities `p`, and delivery ratios `rho`.
///
/// # Panics
///
/// Panics if the parameter vectors are inconsistent (they come from the
/// figure definitions below, so this indicates a bug in the caller).
#[must_use]
pub fn run_video(
    alpha: &[f64],
    p: &[f64],
    rho: &[f64],
    policy: PolicySpec,
    intervals: usize,
    seed: u64,
) -> RunReport {
    scenario::video_per_link(alpha.to_vec(), p.to_vec(), rho.to_vec(), seed)
        .with_policy(policy)
        .with_intervals(intervals)
        .run()
        .expect("valid video network")
}

/// Runs the control workload (2 ms deadline, 100 B payload, Bernoulli
/// arrivals with rate `lambda` on every link).
///
/// # Panics
///
/// Panics if the parameters are inconsistent.
#[must_use]
pub fn run_control(
    n: usize,
    lambda: f64,
    p: f64,
    rho: f64,
    policy: PolicySpec,
    intervals: usize,
    seed: u64,
) -> RunReport {
    let mut sc = scenario::control(n, lambda, rho, seed)
        .with_policy(policy)
        .with_intervals(intervals);
    sc.success = Param::Uniform(p);
    sc.run().expect("valid control network")
}

fn contender_columns() -> Vec<String> {
    Contender::ALL.iter().map(|c| c.label().into()).collect()
}

/// Runs every contender at every point of `sweep` and tabulates the total
/// deficiency (the y-axis shared by Figs. 3, 4, 9, 10).
fn deficiency_table(title: &str, sweep: &Sweep) -> SeriesTable {
    let mut table = SeriesTable::new(title, sweep.axis.label(), contender_columns());
    let rows = crate::parallel_map(sweep.scenarios(), |sc| {
        Contender::ALL
            .iter()
            .map(|c| {
                sc.clone()
                    .with_policy(c.spec())
                    .run()
                    .expect("valid sweep point")
                    .final_total_deficiency
            })
            .collect::<Vec<f64>>()
    });
    for (&x, row) in sweep.points.iter().zip(rows) {
        table.push_row(x, row);
    }
    table
}

/// Fig. 3 — total timely-throughput deficiency of the symmetric video
/// network (N = 20, p = 0.7, ρ = 0.9) as the burst probability `α*` sweeps.
#[must_use]
pub fn fig3(intervals: usize, seed: u64) -> SeriesTable {
    deficiency_table(
        "Fig. 3: symmetric video network, 90% delivery ratio (total deficiency vs alpha*)",
        &scenario::fig3(intervals, seed),
    )
}

/// Fig. 4 — deficiency of the same network at fixed `α* = 0.55` as the
/// required delivery ratio sweeps.
#[must_use]
pub fn fig4(intervals: usize, seed: u64) -> SeriesTable {
    deficiency_table(
        "Fig. 4: symmetric video network, alpha* = 0.55 (total deficiency vs delivery ratio)",
        &scenario::fig4(intervals, seed),
    )
}

/// Fig. 5 output: the sampled running-throughput series plus the interval
/// at which each policy entered the 1% convergence band.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// Running timely-throughput of the lowest-initial-priority link,
    /// sampled every few intervals.
    pub table: SeriesTable,
    /// `(policy, first interval within 1% of q_n)`.
    pub convergence: Vec<(String, Option<usize>)>,
    /// The tracked link's requirement `q_n`.
    pub requirement: f64,
}

/// Fig. 5 — convergence of the link with the lowest priority at time 0
/// (α* = 0.55, ρ = 0.93) under DB-DP vs LDF.
#[must_use]
pub fn fig5(intervals: usize, seed: u64) -> Fig5Result {
    let base = scenario::fig5(intervals, seed);
    let q = 0.93 * 3.5 * 0.55;
    // Three policies: the paper's two, plus DB-DP with three swap pairs
    // (Remark 6) showing how the reordering rate sets the convergence
    // constant.
    let configs = vec![
        Contender::DbDp.spec(),
        Contender::Ldf.spec(),
        PolicySpec::db_dp_pairs(3),
    ];
    let labels: Vec<String> = configs.iter().map(PolicySpec::label).collect();
    let results = crate::parallel_map(configs, |spec| {
        let report = base
            .clone()
            .with_policy(spec)
            .run()
            .expect("valid fig5 network");
        let tracker = report.tracked.expect("tracking configured");
        (tracker.settled_at(), tracker.history().to_vec())
    });
    let mut histories = Vec::new();
    let mut convergence = Vec::new();
    for (label, (settled, history)) in labels.iter().zip(results) {
        convergence.push((label.clone(), settled));
        histories.push(history);
    }
    let mut table = SeriesTable::new(
        "Fig. 5: running timely-throughput of the lowest-initial-priority link (alpha* = 0.55, rho = 0.93)",
        "interval",
        labels,
    );
    let stride = (intervals / 50).max(1);
    for k in (0..intervals).step_by(stride) {
        table.push_row(k as f64, histories.iter().map(|h| h[k]).collect());
    }
    Fig5Result {
        table,
        convergence,
        requirement: q,
    }
}

/// Fig. 6 — average timely-throughput per priority index under a *fixed*
/// priority ordering at α* = 0.6: throughput increases with priority and
/// even the lowest priority is non-zero (the protocol's built-in
/// anti-starvation).
#[must_use]
pub fn fig6(intervals: usize, seed: u64) -> SeriesTable {
    let report = scenario::fig6(intervals, seed)
        .run()
        .expect("valid fig6 network");
    let mut table = SeriesTable::new(
        "Fig. 6: average timely-throughput per priority index under a fixed ordering (alpha* = 0.6)",
        "priority",
        vec!["throughput".into()],
    );
    // Identity σ: link i holds priority i + 1.
    for (i, &tp) in report.per_link_throughput.iter().enumerate() {
        table.push_row((i + 1) as f64, vec![tp]);
    }
    table
}

fn group_columns() -> Vec<String> {
    let mut cols = Vec::new();
    for c in Contender::ALL {
        cols.push(format!("{} g1", c.label()));
        cols.push(format!("{} g2", c.label()));
    }
    cols
}

fn group_deficiencies(report: &RunReport, rho: &[f64], alpha: &[f64]) -> (f64, f64) {
    // q_n = ρ_n · λ_n with λ_n = 3.5·α_n.
    let q: Vec<f64> = rho.iter().zip(alpha).map(|(r, a)| r * 3.5 * a).collect();
    let g1: Vec<LinkId> = (0..10).map(LinkId::new).collect();
    let g2: Vec<LinkId> = (10..20).map(LinkId::new).collect();
    (
        report.group_deficiency(&q, &g1),
        report.group_deficiency(&q, &g2),
    )
}

/// Runs every contender at every point of an asymmetric-network sweep and
/// tabulates the two group deficiencies (Figs. 7–8).
fn group_table(title: &str, sweep: &Sweep) -> SeriesTable {
    let mut table = SeriesTable::new(title, sweep.axis.label(), group_columns());
    let rows = crate::parallel_map(sweep.scenarios(), |sc| {
        let rho = sc.ratio.expand(sc.links);
        let alpha = match &sc.traffic {
            TrafficSpec::Burst { alpha, .. } => alpha.expand(sc.links),
            other => panic!("asymmetric sweep over non-burst traffic {other:?}"),
        };
        let mut row = Vec::new();
        for c in Contender::ALL {
            let report = sc
                .clone()
                .with_policy(c.spec())
                .run()
                .expect("valid sweep point");
            let (g1, g2) = group_deficiencies(&report, &rho, &alpha);
            row.push(g1);
            row.push(g2);
        }
        row
    });
    for (&x, row) in sweep.points.iter().zip(rows) {
        table.push_row(x, row);
    }
    table
}

/// Fig. 7 — group-wide deficiency of the asymmetric network at ρ = 0.9 as
/// `α*` sweeps.
#[must_use]
pub fn fig7(intervals: usize, seed: u64) -> SeriesTable {
    group_table(
        "Fig. 7: asymmetric network, 90% delivery ratio (group deficiency vs alpha*)",
        &scenario::fig7(intervals, seed),
    )
}

/// Fig. 8 — group-wide deficiency of the asymmetric network at fixed
/// `α* = 0.7` as the delivery ratio sweeps.
#[must_use]
pub fn fig8(intervals: usize, seed: u64) -> SeriesTable {
    group_table(
        "Fig. 8: asymmetric network, alpha* = 0.7 (group deficiency vs delivery ratio)",
        &scenario::fig8(intervals, seed),
    )
}

/// Fig. 9 — total deficiency of the control network (N = 10, p = 0.7,
/// ρ = 0.99, T = 2 ms, 100 B) as the Bernoulli arrival rate `λ*` sweeps.
#[must_use]
pub fn fig9(intervals: usize, seed: u64) -> SeriesTable {
    deficiency_table(
        "Fig. 9: control network, 99% delivery ratio (total deficiency vs lambda*)",
        &scenario::fig9(intervals, seed),
    )
}

/// Fig. 10 — the control network at fixed `λ* = 0.78` as the delivery
/// ratio sweeps.
#[must_use]
pub fn fig10(intervals: usize, seed: u64) -> SeriesTable {
    deficiency_table(
        "Fig. 10: control network, lambda* = 0.78 (total deficiency vs delivery ratio)",
        &scenario::fig10(intervals, seed),
    )
}

/// The sensing-error rates of the fault sweep.
pub const FAULT_EPSILONS: [f64; 5] = [0.0, 1e-4, 1e-3, 1e-2, 1e-1];

/// The fault-injection robustness sweep (DESIGN.md §9): an 8-link video
/// network under symmetric carrier-sensing error rate ε plus one link
/// crash/revive event (link 3 goes down at `intervals/4` for
/// `intervals/20` intervals and revives with stale priority state), run on
/// DB-DP's degraded engine. Tabulates the total timely-throughput, the mean
/// time-to-reconverge after a priority desynchronization (in intervals; 0
/// when the run never desynchronized), and the raw divergence / recovery
/// fallback counts.
///
/// The ε = 0 row isolates churn: the only corruption is the revived link's
/// stale priority belief.
#[must_use]
pub fn fig_fault(intervals: usize, seed: u64) -> SeriesTable {
    let crash_at = (intervals as u64) / 4;
    let down = ((intervals as u64) / 20).max(1);
    let scenarios: Vec<_> = FAULT_EPSILONS
        .iter()
        .map(|&eps| {
            scenario::video(8, 0.55, 0.9, seed)
                .with_intervals(intervals)
                .with_fault(FaultSpec::sensing(eps).with_churn(3, crash_at, down))
        })
        .collect();
    let mut table = SeriesTable::new(
        "Fault sweep: 8-link video network with sensing errors and one crash/revive \
         (DB-DP degraded engine vs epsilon)",
        "epsilon",
        vec![
            "throughput".into(),
            "mean reconverge".into(),
            "divergences".into(),
            "fallbacks".into(),
        ],
    );
    let rows = crate::parallel_map(scenarios, |sc| {
        let report = sc.run().expect("valid fault sweep point");
        let stats = report.fault.expect("degraded engine reports fault stats");
        vec![
            report.per_link_throughput.iter().sum::<f64>(),
            stats.mean_time_to_reconverge().unwrap_or(0.0),
            stats.divergences as f64,
            stats.fallbacks as f64,
        ]
    });
    for (&eps, row) in FAULT_EPSILONS.iter().zip(rows) {
        table.push_row(eps, row);
    }
    table
}

/// The expected bad-burst lengths (in intervals) of the burst sweep.
pub const BURST_LENGTHS: [f64; 4] = [1.0, 4.0, 16.0, 64.0];

/// The bad-state sensing-error rates of the burst sweep.
pub const BURST_BAD_RATES: [f64; 2] = [0.1, 0.25];

/// The stationary bad fraction of the burst sweep's Gilbert–Elliott chains.
pub const BURST_BAD_FRACTION: f64 = 0.004;

/// The correlated-fault robustness sweep (DESIGN.md §14): an 8-link
/// control network whose carrier sensing follows a per-link Gilbert–Elliott
/// chain. The x-axis is the expected bad-burst length `L` (`p_exit = 1/L`)
/// with the stationary bad fraction held at 0.4% (`p_enter` solved from
/// `π = p_enter/(p_enter + p_exit)`), so every point injects the same
/// long-run error mass and only the *correlation* of the errors varies:
/// `L = 1` is near-memoryless, `L = 64` concentrates the same errors into
/// rare long outages. Good-state sensing is exact; the bad state errs at
/// each rate in [`BURST_BAD_RATES`] (both directions).
///
/// Each grid point runs twice — fixed R2 miss limit (the default 3) and
/// adaptive `base = 2, cap = 32` — tabulating the mean time-to-reconverge
/// after a priority desynchronization (0 when no desync epoch completed)
/// and the deadline-miss rate `1 − throughput/λ` (the fraction of offered
/// packets that missed their interval). The sweep's finding: fragmented
/// error mass (short, frequent bursts) keeps the priority beliefs
/// permanently desynchronized, while the same mass in rare long outages
/// (`L = 64`) is fully absorbed — recovery completes in the clean gaps.
#[must_use]
pub fn fig_fault_burst(intervals: usize, seed: u64) -> SeriesTable {
    let scenarios: Vec<_> = BURST_LENGTHS
        .iter()
        .flat_map(|&len| {
            BURST_BAD_RATES.iter().flat_map(move |&bad_eps| {
                let p_exit = 1.0 / len;
                let p_enter = p_exit * BURST_BAD_FRACTION / (1.0 - BURST_BAD_FRACTION);
                [false, true].map(move |adaptive| {
                    let mut spec =
                        FaultSpec::sensing(0.0).with_burst(p_enter, p_exit, bad_eps, bad_eps);
                    if adaptive {
                        spec = spec.with_adaptive_recovery(2, 32);
                    }
                    (adaptive, spec)
                })
            })
        })
        .map(|(_, spec)| {
            scenario::control(8, 0.7, 0.95, seed)
                .with_intervals(intervals)
                .with_fault(spec)
        })
        .collect();
    let mut table = SeriesTable::new(
        "Burst sweep: 8-link control network under Gilbert-Elliott sensing, 0.4% \
         stationary bad fraction (fixed vs adaptive R2 recovery vs expected burst length)",
        "burst length",
        BURST_BAD_RATES
            .iter()
            .flat_map(|eps| {
                ["fixed", "adaptive"].into_iter().flat_map(move |mode| {
                    [
                        format!("reconverge ({mode} @{eps})"),
                        format!("miss rate ({mode} @{eps})"),
                    ]
                })
            })
            .collect(),
    );
    let results = crate::parallel_map(scenarios, |sc| {
        let report = sc.run().expect("valid burst sweep point");
        let stats = report.fault.expect("degraded engine reports fault stats");
        let offered = 8.0 * 0.7;
        let miss = 1.0 - report.per_link_throughput.iter().sum::<f64>() / offered;
        [
            stats.mean_time_to_reconverge().unwrap_or(0.0),
            miss.max(0.0),
        ]
    });
    for (&len, grid) in BURST_LENGTHS.iter().zip(results.chunks_exact(4)) {
        table.push_row(len, grid.iter().flatten().copied().collect());
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    // Small interval counts keep these as smoke tests; the binaries run the
    // full lengths.

    #[test]
    fn fig3_has_expected_shape() {
        let t = fig3(40, 7);
        assert_eq!(t.rows().len(), 7);
        assert_eq!(t.columns().len(), 3);
        // At the lightest load every policy's deficiency is small-ish and
        // at the heaviest load FCSMA is the worst.
        let first = &t.rows()[0];
        let last = t.rows().last().unwrap();
        assert!(first.1[1] < last.1[1], "LDF deficiency grows with load");
        assert!(
            last.1[2] >= last.1[1],
            "FCSMA should not beat LDF under overload"
        );
    }

    #[test]
    fn fig5_tracks_convergence() {
        let r = fig5(300, 3);
        assert_eq!(r.convergence.len(), 3); // DB-DP, LDF, DB-DP 3 pairs
        assert_eq!(r.convergence[2].0, "DB-DP 3 pairs");
        assert!(r.requirement > 0.0);
        assert!(!r.table.rows().is_empty());
        assert_eq!(r.table.columns().len(), 3);
    }

    #[test]
    fn fig6_throughput_increases_with_priority() {
        let t = fig6(300, 5);
        assert_eq!(t.rows().len(), 20);
        let first = t.rows()[0].1[0];
        let last = t.rows()[19].1[0];
        assert!(
            first > last,
            "priority 1 ({first}) should out-deliver priority 20 ({last})"
        );
        assert!(last > 0.0, "lowest priority must not starve");
    }

    #[test]
    fn fig_fault_sweeps_epsilon() {
        let t = fig_fault(200, 9);
        assert_eq!(t.rows().len(), 5);
        assert_eq!(t.columns().len(), 4);
        let worst = &t.rows()[4].1;
        assert!(worst[2] > 0.0, "ε = 0.1 must cause divergences");
        assert!(worst[3] > 0.0, "ε = 0.1 must trigger recovery fallbacks");
        // Every row still delivers traffic.
        for (eps, row) in t.rows() {
            assert!(row[0] > 0.0, "no throughput at ε = {eps}");
        }
    }

    #[test]
    fn fig_fault_burst_sweeps_the_grid() {
        let t = fig_fault_burst(300, 9);
        assert_eq!(t.rows().len(), 4);
        assert_eq!(
            t.columns().len(),
            8,
            "2 bad rates x 2 recovery modes x 2 metrics"
        );
        for (len, row) in t.rows() {
            for v in row {
                assert!(v.is_finite() && *v >= 0.0, "bad cell at L = {len}");
            }
            // Odd columns are deadline-miss rates.
            for i in [1, 3, 5, 7] {
                assert!(row[i] <= 1.0, "miss rate out of range at L = {len}");
            }
        }
    }

    #[test]
    fn control_runner_is_deterministic() {
        let a = run_control(4, 0.6, 0.7, 0.95, PolicySpec::Ldf, 50, 11);
        let b = run_control(4, 0.6, 0.7, 0.95, PolicySpec::Ldf, 50, 11);
        assert_eq!(a.per_link_throughput, b.per_link_throughput);
    }
}
