//! The UDP backend: one socket per link, frames as datagrams.
//!
//! Each [`UdpTransport`] owns a bound [`std::net::UdpSocket`] and the peer
//! address list; [`Transport::broadcast`] sends the encoded frame to every
//! peer as one datagram. UDP may drop, duplicate, or reorder datagrams —
//! [`crate::LinkNode`] is built for exactly that (periodic re-broadcast,
//! deduplication, ahead-of-schedule buffering), so on a lossless local
//! socket the decision trace still matches the sim and loopback backends
//! byte for byte (the replay contract), and under real loss the protocol
//! degrades in sync time, never in decisions.

use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::time::Duration;

use crate::error::NetError;
use crate::frame::Frame;
use crate::transport::Transport;

/// Largest datagram the receive path accepts. Generous headroom over the
/// 42-byte maximum frame so a future wire version cannot be silently
/// truncated into codec errors.
const RECV_BUF: usize = 256;

/// A UDP endpoint for one link.
///
/// # Example
///
/// Two endpoints on OS-assigned localhost ports:
///
/// ```
/// use std::time::Duration;
/// use rtmac_net::{Beacon, Frame, Transport, UdpTransport};
///
/// let mut eps = UdpTransport::local_cluster(2).unwrap();
/// let frame = Frame::Beacon(Beacon {
///     link: 0, links: 2, seed: 7, intervals: 3, config_digest: 1,
/// });
/// eps[0].broadcast(&frame).unwrap();
/// let got = eps[1].recv(Duration::from_secs(5)).unwrap();
/// assert_eq!(got, Some(frame));
/// ```
#[derive(Debug)]
pub struct UdpTransport {
    socket: UdpSocket,
    peers: Vec<SocketAddr>,
    link: usize,
    n_links: usize,
    buf: Box<[u8; RECV_BUF]>,
}

impl UdpTransport {
    /// Binds the endpoint for `link` at `bind` and points it at `peers`
    /// (the other links' addresses, in any order).
    ///
    /// `n_links` is the deployment size: it must equal `peers.len() + 1`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when the bind fails or an address does not
    /// resolve, and [`NetError::Config`] for an inconsistent peer count.
    ///
    /// # Example
    ///
    /// ```
    /// use rtmac_net::UdpTransport;
    ///
    /// let ep = UdpTransport::bind("127.0.0.1:0", &["127.0.0.1:9".to_string()], 0, 2);
    /// assert!(ep.is_ok());
    /// let bad = UdpTransport::bind("127.0.0.1:0", &[], 0, 2);
    /// assert!(bad.is_err());
    /// ```
    pub fn bind(
        bind: &str,
        peers: &[String],
        link: usize,
        n_links: usize,
    ) -> Result<Self, NetError> {
        if peers.len() + 1 != n_links {
            return Err(NetError::Config(format!(
                "{n_links} link(s) need {} peer address(es), got {}",
                n_links - 1,
                peers.len()
            )));
        }
        let socket = UdpSocket::bind(bind)
            .map_err(|e| NetError::Io(format!("cannot bind udp socket at {bind}: {e}")))?;
        let mut addrs = Vec::with_capacity(peers.len());
        for peer in peers {
            let addr = peer
                .to_socket_addrs()
                .map_err(|e| NetError::Io(format!("cannot resolve peer {peer}: {e}")))?
                .next()
                .ok_or_else(|| NetError::Io(format!("peer {peer} resolves to no address")))?;
            addrs.push(addr);
        }
        Ok(UdpTransport {
            socket,
            peers: addrs,
            link,
            n_links,
            buf: Box::new([0; RECV_BUF]),
        })
    }

    /// Builds an in-process cluster of `n` endpoints on OS-assigned
    /// localhost ports, fully meshed, in link order — the UDP twin of
    /// [`crate::LoopbackHub::endpoints`], used by the emulation harness's
    /// thread mode and the replay contract's UDP leg.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when a socket cannot be bound.
    pub fn local_cluster(n: usize) -> Result<Vec<UdpTransport>, NetError> {
        let mut sockets = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            let socket = UdpSocket::bind(("127.0.0.1", 0))
                .map_err(|e| NetError::Io(format!("cannot bind local udp socket: {e}")))?;
            addrs.push(
                socket
                    .local_addr()
                    .map_err(|e| NetError::Io(format!("no local address: {e}")))?,
            );
            sockets.push(socket);
        }
        Ok(sockets
            .into_iter()
            .enumerate()
            .map(|(link, socket)| UdpTransport {
                socket,
                peers: addrs
                    .iter()
                    .enumerate()
                    .filter(|&(peer, _)| peer != link)
                    .map(|(_, &a)| a)
                    .collect(),
                link,
                n_links: n,
                buf: Box::new([0; RECV_BUF]),
            })
            .collect())
    }

    /// The address this endpoint is bound to.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] if the OS cannot report the local address.
    pub fn local_addr(&self) -> Result<SocketAddr, NetError> {
        self.socket
            .local_addr()
            .map_err(|e| NetError::Io(format!("no local address: {e}")))
    }
}

impl Transport for UdpTransport {
    fn broadcast(&mut self, frame: &Frame) -> Result<(), NetError> {
        let bytes = frame.encode();
        for &peer in &self.peers {
            // A full socket buffer shows up as WouldBlock; dropping the
            // datagram is within UDP semantics and the node's re-broadcast
            // loop repairs it, so only hard failures surface.
            match self.socket.send_to(&bytes, peer) {
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) => return Err(NetError::Io(format!("send to {peer} failed: {e}"))),
            }
        }
        Ok(())
    }

    fn recv(&mut self, timeout: Duration) -> Result<Option<Frame>, NetError> {
        // A zero read timeout means "block forever" to the OS; clamp up.
        let timeout = timeout.max(Duration::from_millis(1));
        self.socket
            .set_read_timeout(Some(timeout))
            .map_err(|e| NetError::Io(format!("cannot set read timeout: {e}")))?;
        match self.socket.recv_from(&mut self.buf[..]) {
            Ok((len, _)) => Ok(Some(Frame::decode_datagram(&self.buf[..len])?)),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(NetError::Io(format!("recv failed: {e}"))),
        }
    }

    fn local_link(&self) -> usize {
        self.link
    }

    fn n_links(&self) -> usize {
        self.n_links
    }

    fn name(&self) -> &'static str {
        "udp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Activity;

    #[test]
    fn cluster_is_fully_meshed() {
        let mut eps = UdpTransport::local_cluster(3).unwrap();
        let frame = Frame::Claim(Activity {
            interval: 1,
            link: 2,
            rank: 0,
            backlog: 1,
            deliveries: 1,
            attempts: 1,
            state_digest: 77,
        });
        eps[2].broadcast(&frame).unwrap();
        for ep in &mut eps[..2] {
            assert_eq!(ep.recv(Duration::from_secs(5)).unwrap(), Some(frame));
        }
    }

    #[test]
    fn recv_timeout_returns_none() {
        let mut eps = UdpTransport::local_cluster(2).unwrap();
        assert_eq!(eps[0].recv(Duration::from_millis(5)).unwrap(), None);
    }

    #[test]
    fn peer_count_is_validated() {
        assert!(matches!(
            UdpTransport::bind("127.0.0.1:0", &[], 0, 3),
            Err(NetError::Config(_))
        ));
    }
}
