//! Fixture: the lock-in-loop-hold rule.

use rtmac::sync::Mutex;

/// Holds the own-range guard across the victim scan — the
/// symmetric-deadlock shape the rule convicts.
pub fn deadlocking_scan(ranges: &[Mutex<(usize, usize)>], w: usize) {
    let mut own = ranges[w].lock();
    for v in 0..ranges.len() {
        let other = ranges[v].lock();
        own.0 = other.0;
    }
}

/// Scoping the first guard out before the loop is the sanctioned shape.
pub fn scoped_scan(ranges: &[Mutex<(usize, usize)>], w: usize) -> usize {
    let lo = {
        let own = ranges[w].lock();
        own.0
    };
    let mut sum = lo;
    for v in 0..ranges.len() {
        let other = ranges[v].lock();
        sum = other.0;
    }
    sum
}

/// An explicit `drop` before the loop also releases the guard in time.
pub fn dropping_scan(ranges: &[Mutex<(usize, usize)>], w: usize) {
    let own = ranges[w].lock();
    drop(own);
    while let Some(v) = next_victim() {
        let _other = ranges[v].lock();
    }
}
