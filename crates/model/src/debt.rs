//! Delivery-debt accounting (Eq. 1 of the paper).

use crate::{LinkId, Requirements};

/// The delivery-debt ledger: the virtual queues driving both ELDF and DB-DP.
///
/// At the beginning of interval `k` each link `n` carries debt
///
/// ```text
/// d_n(k+1) = d_n(k) − S_n(k) + q_n,      d_n(0) = 0,
/// ```
///
/// where `S_n(k)` is the number of on-time deliveries in interval `k`.
/// Equivalently `d_n(k) = k·q_n − Σ_{j<k} S_n(j)`: the debt is exactly how
/// far the link has fallen behind its requirement.
///
/// # Example
///
/// ```
/// use rtmac_model::{DebtLedger, Requirements};
///
/// let mut debts = DebtLedger::new(Requirements::uniform(2, 0.5)?);
/// debts.settle_interval(&[0, 2]);
/// assert_eq!(debts.debt(0.into()), 0.5);   // fell behind
/// assert_eq!(debts.debt(1.into()), -1.5);  // ran ahead
/// assert_eq!(debts.positive(1.into()), 0.0); // d⁺ clamps at zero
/// assert_eq!(debts.interval(), 1);
/// # Ok::<(), rtmac_model::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DebtLedger {
    requirements: Requirements,
    debts: Vec<f64>,
    cumulative_deliveries: Vec<u64>,
    interval: u64,
}

impl DebtLedger {
    /// Creates a ledger with all debts at zero (`d_n(0) = 0`).
    #[must_use]
    pub fn new(requirements: Requirements) -> Self {
        let n = requirements.len();
        DebtLedger {
            requirements,
            debts: vec![0.0; n],
            cumulative_deliveries: vec![0; n],
            interval: 0,
        }
    }

    /// Number of links.
    #[must_use]
    pub fn len(&self) -> usize {
        self.debts.len()
    }

    /// Returns `true` if the ledger tracks no links (never constructible).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.debts.is_empty()
    }

    /// The requirements this ledger enforces.
    #[must_use]
    pub fn requirements(&self) -> &Requirements {
        &self.requirements
    }

    /// The current interval index `k` (how many intervals have been settled).
    #[must_use]
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Current debt `d_n(k)` of one link (may be negative).
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    #[must_use]
    pub fn debt(&self, link: LinkId) -> f64 {
        self.debts[link.index()]
    }

    /// Positive part `d_n⁺(k) = max{0, d_n(k)}`.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    #[must_use]
    pub fn positive(&self, link: LinkId) -> f64 {
        self.debts[link.index()].max(0.0)
    }

    /// All current debts, indexed by link.
    #[must_use]
    pub fn debts(&self) -> &[f64] {
        &self.debts
    }

    /// `‖d(k)‖_∞` — the largest debt magnitude.
    #[must_use]
    pub fn max_norm(&self) -> f64 {
        self.debts.iter().fold(0.0, |m, d| m.max(d.abs()))
    }

    /// Total deliveries of one link since interval 0.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    #[must_use]
    pub fn cumulative_deliveries(&self, link: LinkId) -> u64 {
        self.cumulative_deliveries[link.index()]
    }

    /// Applies one interval's deliveries: `d_n ← d_n − S_n + q_n`.
    ///
    /// # Panics
    ///
    /// Panics if `deliveries.len()` differs from the number of links.
    pub fn settle_interval(&mut self, deliveries: &[u64]) {
        assert_eq!(
            deliveries.len(),
            self.debts.len(),
            "deliveries vector must have one entry per link"
        );
        for (n, &s) in deliveries.iter().enumerate() {
            self.debts[n] += self.requirements.as_slice()[n] - s as f64;
            // Saturate rather than wrap: an over-served link driven past
            // u64::MAX (or an interval counter at the horizon limit) must
            // clamp, not wrap to 0 and corrupt every later throughput and
            // deficiency statistic. Debts themselves are f64 and cannot wrap.
            self.cumulative_deliveries[n] = self.cumulative_deliveries[n].saturating_add(s);
        }
        self.interval = self.interval.saturating_add(1);
    }

    /// Empirical timely-throughput `Σ_j S_n(j) / k` of one link so far.
    ///
    /// Returns 0 before the first interval has been settled.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    #[must_use]
    pub fn empirical_throughput(&self, link: LinkId) -> f64 {
        if self.interval == 0 {
            0.0
        } else {
            self.cumulative_deliveries[link.index()] as f64 / self.interval as f64
        }
    }

    /// Timely-throughput deficiency of one link up to the current interval
    /// (Definition 1): `(q_n − Σ_j S_n(j)/k)⁺`.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    #[must_use]
    pub fn deficiency(&self, link: LinkId) -> f64 {
        (self.requirements.q(link) - self.empirical_throughput(link)).max(0.0)
    }

    /// Total timely-throughput deficiency `Σ_n (q_n − Σ_j S_n(j)/k)⁺`
    /// (Definition 1). The evaluation metric of every figure in the paper.
    #[must_use]
    pub fn total_deficiency(&self) -> f64 {
        (0..self.len())
            .map(|n| self.deficiency(LinkId::new(n)))
            .sum()
    }

    /// Resets debts, delivery counts and the interval counter to zero while
    /// keeping the requirements.
    pub fn reset(&mut self) {
        self.debts.fill(0.0);
        self.cumulative_deliveries.fill(0);
        self.interval = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ledger(n: usize, q: f64) -> DebtLedger {
        DebtLedger::new(Requirements::uniform(n, q).unwrap())
    }

    #[test]
    fn debt_recursion_matches_closed_form() {
        // d_n(k) = k q_n − Σ S_n(j)
        let mut d = ledger(1, 0.9);
        let deliveries = [1u64, 0, 2, 1, 0];
        for &s in &deliveries {
            d.settle_interval(&[s]);
        }
        let k = deliveries.len() as f64;
        let total: u64 = deliveries.iter().sum();
        assert!((d.debt(0.into()) - (k * 0.9 - total as f64)).abs() < 1e-12);
    }

    #[test]
    fn deficiency_is_positive_part() {
        let mut d = ledger(2, 1.0);
        d.settle_interval(&[2, 0]); // link 0 over-delivers
        assert_eq!(d.deficiency(0.into()), 0.0);
        assert_eq!(d.deficiency(1.into()), 1.0);
        assert_eq!(d.total_deficiency(), 1.0);
    }

    #[test]
    fn empirical_throughput_before_first_interval_is_zero() {
        let d = ledger(1, 0.5);
        assert_eq!(d.empirical_throughput(0.into()), 0.0);
        assert_eq!(d.deficiency(0.into()), 0.5);
    }

    #[test]
    fn max_norm_uses_absolute_values() {
        let mut d = ledger(2, 0.0);
        d.settle_interval(&[3, 0]); // debts: [-3, 0]
        assert_eq!(d.max_norm(), 3.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut d = ledger(2, 0.7);
        d.settle_interval(&[1, 1]);
        d.reset();
        assert_eq!(d.interval(), 0);
        assert_eq!(d.debts(), [0.0, 0.0]);
        assert_eq!(d.cumulative_deliveries(0.into()), 0);
    }

    #[test]
    #[should_panic(expected = "one entry per link")]
    fn settle_length_mismatch_panics() {
        ledger(2, 0.5).settle_interval(&[1]);
    }

    /// Boundary regression: counters at the integer edge saturate instead
    /// of wrapping (pre-fix this panicked in debug builds and wrapped to 0
    /// in release builds, corrupting every later statistic).
    #[test]
    fn counters_saturate_at_the_boundary_instead_of_wrapping() {
        let mut d = ledger(1, 0.5);
        d.settle_interval(&[u64::MAX]);
        d.settle_interval(&[u64::MAX]);
        assert_eq!(d.cumulative_deliveries(0.into()), u64::MAX);
        assert_eq!(d.interval(), 2);
        // The f64 debt side keeps its (finite, hugely negative) value.
        assert!(d.debt(0.into()) < 0.0 && d.debt(0.into()).is_finite());
        // Empirical throughput stays well-defined after saturation.
        assert!(d.empirical_throughput(0.into()).is_finite());
    }

    proptest! {
        /// Invariant: after any delivery history, debt equals
        /// k·q − cumulative deliveries, and d⁺ is nonnegative.
        #[test]
        fn prop_debt_invariants(q in 0.0f64..2.0, history in proptest::collection::vec(0u64..4, 1..50)) {
            let mut d = ledger(1, q);
            for &s in &history {
                d.settle_interval(&[s]);
            }
            let k = history.len() as f64;
            let total: u64 = history.iter().sum();
            prop_assert!((d.debt(0.into()) - (k * q - total as f64)).abs() < 1e-9);
            prop_assert!(d.positive(0.into()) >= 0.0);
            prop_assert_eq!(d.cumulative_deliveries(0.into()), total);
        }

        /// Total deficiency is always within [0, Σ q_n].
        #[test]
        fn prop_total_deficiency_bounds(
            qs in proptest::collection::vec(0.0f64..1.0, 1..6),
            rounds in 1usize..20,
        ) {
            let reqs = Requirements::new(qs.clone()).unwrap();
            let mut d = DebtLedger::new(reqs);
            for r in 0..rounds {
                let deliveries: Vec<u64> = (0..qs.len()).map(|n| ((r + n) % 2) as u64).collect();
                d.settle_interval(&deliveries);
            }
            let total_q: f64 = qs.iter().sum();
            prop_assert!(d.total_deficiency() >= 0.0);
            prop_assert!(d.total_deficiency() <= total_q + 1e-9);
        }
    }
}
