//! Fixture: the relaxed-ordering-audit rule.

use rtmac::sync::{AtomicUsize, Ordering};

/// Bumps a counter with `Relaxed` and no audited waiver — flagged.
pub fn bump(counter: &AtomicUsize) -> usize {
    counter.fetch_add(1, Ordering::Relaxed)
}

/// SeqCst needs no waiver, and a bare `Relaxed` ident is not an ordering.
pub fn quiet(counter: &AtomicUsize, mode: Mode) -> usize {
    let _mode = Mode::Relaxed;
    drop(mode);
    counter.load(Ordering::SeqCst)
}

/// A waived `Relaxed` load names the counter and stays silent.
pub fn audited(counter: &AtomicUsize) -> usize {
    // lint: allow(relaxed-ordering-audit) — fixture: `counter` is a tally
    // whose atomicity alone carries the invariant; its value orders nothing.
    counter.load(Ordering::Relaxed)
}
