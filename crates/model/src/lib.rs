//! # rtmac-model
//!
//! Domain primitives shared by every crate in the `rtmac` workspace, modeling
//! the system of Hsieh & Hou, *A Decentralized Medium Access Protocol for
//! Real-Time Wireless Ad Hoc Networks With Unreliable Transmissions*
//! (ICDCS 2018):
//!
//! * [`LinkId`] — a typed index for the `N` directed links.
//! * [`NetworkConfig`] — the `(N, A, T, p)` network description: link count,
//!   per-packet deadline `T`, and per-link success probabilities `p_n`.
//! * [`Requirements`] — timely-throughput requirements `q_n` (equivalently
//!   delivery ratios `ρ_n = q_n / λ_n`).
//! * [`DebtLedger`] — delivery debts `d_n(k+1) = d_n(k) − S_n(k) + q_n`
//!   (Eq. 1 of the paper).
//! * [`influence`] — *debt influence functions* (Definition 6): the
//!   nondecreasing, asymptotically translation-invariant weights `f` used by
//!   both ELDF and DB-DP.
//! * [`Permutation`] — transmission priority vectors `σ ∈ S_N` with the
//!   adjacent-transposition and symmetric-difference machinery of
//!   Definitions 7–9.
//! * [`metrics`] — timely-throughput deficiency (Definition 1) and
//!   convergence tracking.
//!
//! # Example
//!
//! ```
//! use rtmac_model::{DebtLedger, Requirements};
//! use rtmac_model::influence::{DebtInfluence, PaperLog};
//!
//! // Two links, each requiring 0.9 deliveries per interval.
//! let reqs = Requirements::uniform(2, 0.9)?;
//! let mut debts = DebtLedger::new(reqs);
//! debts.settle_interval(&[1, 0]); // link 0 delivered, link 1 did not
//! assert_eq!(debts.debt(1.into()), 0.9);
//! assert!(debts.debt(0.into()) < 0.0);
//!
//! // The paper's debt influence function f(x) = log(max{1, 100(x+1)}).
//! let f = PaperLog::default();
//! assert!(f.eval(debts.positive(1.into())) > 0.0);
//! # Ok::<(), rtmac_model::ConfigError>(())
//! ```

mod config;
mod debt;
mod error;
pub mod influence;
mod link;
pub mod metrics;
mod perm;
mod requirements;

pub use config::NetworkConfig;
pub use debt::DebtLedger;
pub use error::ConfigError;
pub use link::LinkId;
pub use perm::{AdjacentTransposition, Permutation};
pub use requirements::Requirements;
