//! The Decentralized Priority (DP) protocol — Algorithm 2 of the paper,
//! including the multi-pair generalization of Remark 6.
//!
//! Each link holds a unique priority index `σ_n(k−1) ∈ 1..=N`. At the start
//! of interval `k` every device derives the same random swap-candidate
//! priorities `C(k)` from a shared seed, computes a *deterministic* backoff
//! from its own priority (Eq. 6), and counts idle slots. Because the backoff
//! numbers are distinct by construction, transmissions never collide. The
//! two candidate links flip private coins `ξ` (Eq. 5) and detect each
//! other's intention purely by carrier sensing at the instant their backoff
//! counter reaches 1 (Eqs. 7–8); a confirmed handshake exchanges their
//! priorities for the next interval.

use rand::seq::SliceRandom;
use rand::Rng;
use rtmac_model::{AdjacentTransposition, LinkId, Permutation};
use rtmac_phy::channel::LossModel;
use rtmac_phy::Medium;
use rtmac_sim::{Nanos, SimRng};

use crate::{IntervalOutcome, MacTiming};

/// Configuration of a [`DpEngine`].
#[derive(Debug, Clone)]
pub struct DpConfig {
    timing: MacTiming,
    swap_pairs: usize,
    trace: bool,
}

impl DpConfig {
    /// The paper's protocol: one swap pair per interval.
    #[must_use]
    pub fn new(timing: MacTiming) -> Self {
        DpConfig {
            timing,
            swap_pairs: 1,
            trace: false,
        }
    }

    /// Uses `pairs` simultaneous non-adjacent swap pairs per interval
    /// (Remark 6). `0` disables reordering entirely — the fixed-priority
    /// variant measured in Fig. 6.
    #[must_use]
    pub fn with_swap_pairs(mut self, pairs: usize) -> Self {
        self.swap_pairs = pairs;
        self
    }

    /// Records a [`TraceEvent`] timeline for every interval (off by
    /// default; costs an allocation per event).
    #[must_use]
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// The timing context.
    #[must_use]
    pub fn timing(&self) -> &MacTiming {
        &self.timing
    }

    /// Number of swap pairs drawn per interval.
    #[must_use]
    pub fn swap_pairs(&self) -> usize {
        self.swap_pairs
    }

    /// Whether tracing is enabled.
    #[must_use]
    pub fn trace(&self) -> bool {
        self.trace
    }
}

/// Explicit coin outcomes for one drawn candidate pair — Eq. 5 made
/// external, the way [`DpEngine::run_interval_with_candidates`] already
/// externalizes the shared candidate draw. Used by the bounded model
/// checker (`crates/verify`) to enumerate every ξ vector exhaustively
/// instead of sampling it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairCoins {
    /// ξ of the higher-priority candidate: `true` is `+1` ("stay up"),
    /// `false` is `−1` ("move down").
    pub hi_up: bool,
    /// ξ of the lower-priority candidate: `true` is `+1` ("move up"),
    /// `false` is `−1` ("stay down").
    pub lo_up: bool,
}

/// Where an interval's coin flips come from: drawn from `μ` (Eq. 5) or
/// injected verbatim, one [`PairCoins`] per drawn candidate pair.
enum CoinSource<'a> {
    Mu(&'a [f64]),
    Fixed(&'a [PairCoins]),
}

/// The kind of frame a [`TraceEvent::TxStart`] refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A data packet (with ACK and guard time folded into its airtime).
    Data,
    /// An empty priority-claim packet (Step 2 of Algorithm 2).
    Empty,
}

/// One entry in an interval's protocol timeline (enabled by
/// [`DpConfig::with_trace`]). Timestamps are relative to the interval
/// start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A link's initial backoff counter (Eq. 6), emitted at interval start.
    BackoffSet {
        /// The link.
        link: LinkId,
        /// Its backoff counter β_n(k).
        counter: u64,
    },
    /// A frame transmission begins.
    TxStart {
        /// The transmitting link.
        link: LinkId,
        /// Start time within the interval.
        at: Nanos,
        /// Data or empty priority-claim frame.
        kind: FrameKind,
    },
    /// A frame transmission ends.
    TxEnd {
        /// The transmitting link.
        link: LinkId,
        /// End time within the interval.
        at: Nanos,
        /// Whether a data frame was delivered (always `false` for empty
        /// frames).
        delivered: bool,
    },
    /// A swap candidate performed its carrier-sense check at backoff
    /// counter 1 (Step 5, Eqs. 7–8).
    SenseCheck {
        /// The sensing link.
        link: LinkId,
        /// Time of the slot boundary.
        at: Nanos,
        /// What it heard.
        busy: bool,
    },
    /// A priority swap committed at interval end (Step 7).
    SwapCommitted {
        /// The upper priority `C` of the exchanged pair.
        upper: usize,
    },
    /// Degraded mode only ([`crate::FaultyDpEngine`]): the two sides of a
    /// drawn pair committed inconsistent priority moves, so the local σ
    /// views diverged. The pristine [`DpEngine`] never emits this.
    Divergence {
        /// The upper priority `C` of the diverging pair.
        upper: usize,
    },
}

/// Result of one DP interval: the generic [`IntervalOutcome`] plus the
/// protocol's reordering trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DpIntervalReport {
    /// Deliveries, attempts and overhead counters.
    pub outcome: IntervalOutcome,
    /// The swap-candidate upper priorities `C(k)` drawn this interval.
    pub candidates: Vec<usize>,
    /// The adjacent transpositions actually committed (subset of
    /// `candidates`).
    pub swaps: Vec<AdjacentTransposition>,
    /// The protocol timeline (empty unless [`DpConfig::with_trace`] is on).
    pub trace: Vec<TraceEvent>,
}

/// Per-pair handshake state for one interval.
#[derive(Debug, Clone)]
struct PairState {
    /// Upper priority `C` of the pair.
    c: usize,
    hi: LinkId,
    lo: LinkId,
    /// `ξ_hi = −1`: the higher-priority candidate wants to move down.
    hi_wants_down: bool,
    /// `ξ_lo = +1`: the lower-priority candidate wants to move up.
    lo_wants_up: bool,
    hi_checked: bool,
    lo_checked: bool,
    /// Channel sensed busy when hi's counter reached 1 (Eq. 7).
    hi_busy_at_1: bool,
    /// Channel sensed idle when lo's counter reached 1 (Eq. 8).
    lo_idle_at_1: bool,
    /// lo actually began a transmission (the `R_i + R_j ≥ 1` event of
    /// Eq. 9 — without it the handshake cannot complete).
    lo_transmitted: bool,
    /// Deadline corner case the paper leaves unspecified (it idealizes
    /// claim frames to zero width, Definition 10): hi chose to *stay*
    /// (`ξ_hi = +1`, backoff `C−1`) but its claim frame no longer fit
    /// before the deadline — at that same boundary lo's counter stands at
    /// 1 and senses *idle*, so lo will infer "hi wants down". To keep the
    /// permutation consistent with sensing alone, hi then concedes iff a
    /// transmission starts at exactly the next slot boundary (only lo can
    /// occupy that backoff slot, so the observation is unambiguous).
    hi_concede_arm_pending: bool,
    hi_concede_armed: bool,
    hi_concede: bool,
}

impl PairState {
    fn hi_swaps(&self) -> bool {
        (self.hi_wants_down && self.hi_busy_at_1) || self.hi_concede
    }

    fn lo_swaps(&self) -> bool {
        self.lo_wants_up && self.lo_idle_at_1 && self.lo_transmitted
    }
}

/// Per-interval working buffers, owned by the engine so the hot loop
/// allocates nothing after the first interval.
#[derive(Debug, Clone, Default)]
struct Scratch {
    pairs: Vec<PairState>,
    pending_empty: Vec<bool>,
    counter: Vec<u64>,
    role: Vec<Option<(usize, bool)>>,
    data: Vec<u32>,
    done: Vec<bool>,
    transmitters: Vec<usize>,
    /// Shuffle scratch for [`draw_nonadjacent_candidates_into`]; reused
    /// across intervals so the per-interval draw stops allocating after
    /// the first call.
    draw_pool: Vec<usize>,
}

/// The DP protocol engine. Persists the priority permutation `σ` across
/// intervals; everything else is per-interval state.
///
/// # Example
///
/// ```
/// use rtmac_mac::{DpConfig, DpEngine, MacTiming};
/// use rtmac_phy::channel::Bernoulli;
/// use rtmac_phy::PhyProfile;
/// use rtmac_sim::{Nanos, SeedStream};
///
/// let timing = MacTiming::new(PhyProfile::ieee80211a(), Nanos::from_millis(2), 100);
/// let mut engine = DpEngine::new(DpConfig::new(timing), 4);
/// let mut channel = Bernoulli::reliable(4);
/// let mut rng = SeedStream::new(7).rng(0);
/// // One packet per link, neutral coins: everything is delivered
/// // collision-free in priority order.
/// let report = engine.run_interval(&[1, 1, 1, 1], &[0.5; 4], &mut channel, &mut rng);
/// assert_eq!(report.outcome.total_deliveries(), 4);
/// assert_eq!(report.outcome.collisions, 0);
/// ```
#[derive(Debug, Clone)]
pub struct DpEngine {
    config: DpConfig,
    sigma: Permutation,
    scratch: Scratch,
}

impl DpEngine {
    /// Creates an engine for `n_links` links with the identity priority
    /// ordering (`σ_n(0) = n + 1`).
    ///
    /// # Panics
    ///
    /// Panics if `n_links == 0`.
    #[must_use]
    pub fn new(config: DpConfig, n_links: usize) -> Self {
        DpEngine {
            config,
            sigma: Permutation::identity(n_links),
            scratch: Scratch::default(),
        }
    }

    /// The current priority permutation `σ(k−1)`.
    #[must_use]
    pub fn sigma(&self) -> &Permutation {
        &self.sigma
    }

    /// Overrides the priority permutation (e.g. to start a fixed-priority
    /// experiment from a chosen ordering).
    ///
    /// # Panics
    ///
    /// Panics if the permutation size differs from the engine's link count.
    pub fn set_sigma(&mut self, sigma: Permutation) {
        assert_eq!(
            sigma.len(),
            self.sigma.len(),
            "permutation size must match link count"
        );
        self.sigma = sigma;
    }

    /// Number of links.
    #[must_use]
    pub fn n_links(&self) -> usize {
        self.sigma.len()
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &DpConfig {
        &self.config
    }

    /// Draws `swap_pairs` pairwise non-adjacent upper priorities `C` from
    /// `{1, …, N−1}` (Step 1 / Remark 6). With one pair this is exactly the
    /// uniform draw of Algorithm 2.
    fn draw_candidates(&mut self, rng: &mut SimRng) -> Vec<usize> {
        // The candidate set is moved into the caller-owned DpIntervalReport;
        // only the shuffle pool is scratch, and that one persists across
        // intervals.
        // lint: allow(hot-path-alloc) — report-owned candidate buffer; shuffle pool reused via Scratch
        let mut out = Vec::with_capacity(self.config.swap_pairs);
        let mut pool = std::mem::take(&mut self.scratch.draw_pool);
        draw_nonadjacent_candidates_into(
            self.sigma.len(),
            self.config.swap_pairs,
            rng,
            &mut out,
            &mut pool,
        );
        self.scratch.draw_pool = pool;
        out
    }

    /// Runs one interval of the DP protocol (Steps 1–7 of Algorithm 2).
    ///
    /// * `arrivals[n]` — packets arriving at link `n` at the interval start.
    /// * `mu[n]` — the coin parameter `μ_n ∈ (0, 1)` of Eq. 5. The DB-DP
    ///   algorithm computes these from delivery debts (Eq. 14); any other
    ///   choice yields the generic protocol of Section IV.
    ///
    /// # Panics
    ///
    /// Panics if `arrivals`, `mu`, or the channel's link count disagree
    /// with the engine's, or if some `μ_n ∉ (0, 1)`.
    pub fn run_interval(
        &mut self,
        arrivals: &[u32],
        mu: &[f64],
        channel: &mut dyn LossModel,
        rng: &mut SimRng,
    ) -> DpIntervalReport {
        let candidates = self.draw_candidates(rng);
        self.run_candidates(arrivals, CoinSource::Mu(mu), candidates, channel, rng)
    }

    /// Runs one interval with an explicitly chosen candidate set — the
    /// "common random seed" of Step 1 made external, so tests and
    /// multi-node deployments can inject the shared draw. `candidates`
    /// must be sorted upper priorities `C ∈ 1..N`, pairwise non-adjacent.
    ///
    /// # Panics
    ///
    /// Same as [`DpEngine::run_interval`], plus a panic if the candidate
    /// set is malformed.
    pub fn run_interval_with_candidates(
        &mut self,
        arrivals: &[u32],
        mu: &[f64],
        candidates: &[usize],
        channel: &mut dyn LossModel,
        rng: &mut SimRng,
    ) -> DpIntervalReport {
        self.run_candidates(
            arrivals,
            CoinSource::Mu(mu),
            // lint: allow(hot-path-alloc) — copies the caller's injected draw into the report-owned set
            candidates.to_vec(),
            channel,
            rng,
        )
    }

    /// Runs one interval with both the candidate draw *and* the private
    /// coin flips injected — every random protocol decision except the
    /// channel made explicit. `coins[j]` gives the ξ outcomes of pair
    /// `candidates[j]`; `rng` is only consumed by the channel model.
    /// This is the model checker's entry point: it enumerates all
    /// `(candidates, coins, channel)` combinations exhaustively.
    ///
    /// # Panics
    ///
    /// Same as [`DpEngine::run_interval_with_candidates`], plus a panic
    /// if `coins` and `candidates` disagree in length.
    pub fn run_interval_with_coins(
        &mut self,
        arrivals: &[u32],
        candidates: &[usize],
        coins: &[PairCoins],
        channel: &mut dyn LossModel,
        rng: &mut SimRng,
    ) -> DpIntervalReport {
        assert_eq!(
            coins.len(),
            candidates.len(),
            "one PairCoins per candidate pair"
        );
        self.run_candidates(
            arrivals,
            CoinSource::Fixed(coins),
            // lint: allow(hot-path-alloc) — copies the caller's injected draw into the report-owned set
            candidates.to_vec(),
            channel,
            rng,
        )
    }

    /// The shared interval body. Takes the candidate set by value so the
    /// [`DpEngine::run_interval`] path hands its freshly drawn `Vec`
    /// straight through without a copy.
    fn run_candidates(
        &mut self,
        arrivals: &[u32],
        coins: CoinSource<'_>,
        candidates: Vec<usize>,
        channel: &mut dyn LossModel,
        rng: &mut SimRng,
    ) -> DpIntervalReport {
        let n = self.sigma.len();
        assert_eq!(arrivals.len(), n, "arrivals must have one entry per link");
        assert_eq!(channel.n_links(), n, "channel link count mismatch");
        if let CoinSource::Mu(mu) = &coins {
            assert_eq!(mu.len(), n, "mu must have one entry per link");
            for (i, &m) in mu.iter().enumerate() {
                assert!(m > 0.0 && m < 1.0, "mu[{i}] = {m} must lie in (0, 1)");
            }
        }
        for (i, &c) in candidates.iter().enumerate() {
            assert!(c >= 1 && c < n, "candidate priority {c} out of range");
            if i > 0 {
                assert!(
                    c >= candidates[i - 1] + 2,
                    "candidates must be sorted and non-adjacent"
                );
            }
        }
        let Self {
            config,
            sigma,
            scratch,
        } = self;
        let timing = &config.timing;
        let tracing = config.trace;
        // lint: allow(hot-path-alloc) — report-owned trace; lazily allocating and empty unless tracing is on
        let mut trace: Vec<TraceEvent> = Vec::new();

        // Step 2–3: empty packets and coins for candidates.
        let Scratch {
            pairs,
            pending_empty,
            counter,
            role,
            data,
            done,
            transmitters,
            draw_pool: _,
        } = scratch;
        pairs.clear();
        pending_empty.clear();
        pending_empty.resize(n, false);
        for (j, &c) in candidates.iter().enumerate() {
            let hi = sigma.link_with_priority(c);
            let lo = sigma.link_with_priority(c + 1);
            for link in [hi, lo] {
                if arrivals[link.index()] == 0 {
                    pending_empty[link.index()] = true;
                }
            }
            // ξ = +1 with probability μ (Eq. 5), unless injected verbatim.
            let (xi_hi_up, xi_lo_up) = match &coins {
                CoinSource::Mu(mu) => (
                    rng.random_bool(mu[hi.index()]),
                    rng.random_bool(mu[lo.index()]),
                ),
                CoinSource::Fixed(flips) => (flips[j].hi_up, flips[j].lo_up),
            };
            pairs.push(PairState {
                c,
                hi,
                lo,
                hi_wants_down: !xi_hi_up,
                lo_wants_up: xi_lo_up,
                hi_checked: false,
                lo_checked: false,
                hi_busy_at_1: false,
                lo_idle_at_1: false,
                lo_transmitted: false,
                hi_concede_arm_pending: false,
                hi_concede_armed: false,
                hi_concede: false,
            });
        }

        // Step 4: deterministic backoff counters (Eq. 6, generalized to
        // multiple pairs: each completed pair shifts later priorities by 2).
        counter.clear();
        counter.resize(n, 0);
        role.clear();
        role.resize(n, None); // (pair idx, is_hi)
        for (j, pair) in pairs.iter().enumerate() {
            role[pair.hi.index()] = Some((j, true));
            role[pair.lo.index()] = Some((j, false));
        }
        for link in 0..n {
            let sigma_n = sigma.priority_of(LinkId::new(link));
            counter[link] = match role[link] {
                Some((j, is_hi)) => {
                    let pair = &pairs[j];
                    let offset = 2 * j as u64;
                    let xi: i64 = if is_hi {
                        if pair.hi_wants_down {
                            -1
                        } else {
                            1
                        }
                    } else if pair.lo_wants_up {
                        1
                    } else {
                        -1
                    };
                    (sigma_n as i64 - xi) as u64 + offset
                }
                None => {
                    let pairs_above = pairs.iter().filter(|p| p.c + 1 < sigma_n).count() as u64;
                    (sigma_n as u64 - 1) + 2 * pairs_above
                }
            };
            if tracing {
                trace.push(TraceEvent::BackoffSet {
                    link: LinkId::new(link),
                    counter: counter[link],
                });
            }
        }

        // Interval state.
        data.clear();
        data.extend_from_slice(arrivals);
        done.clear();
        done.resize(n, false);
        let mut outcome = IntervalOutcome::empty(n);
        let mut medium = Medium::new();
        let slot = timing.slot();
        let deadline = timing.deadline();

        let mut t = Nanos::ZERO;
        let mut first_boundary = true;
        loop {
            if t >= deadline || done.iter().all(|&d| d) {
                break;
            }

            // Counters decrement at every idle slot boundary except the
            // interval start itself (links with β = 0 transmit immediately).
            if !first_boundary {
                for link in 0..n {
                    if !done[link] && counter[link] > 0 {
                        counter[link] -= 1;
                    }
                }
            }

            // Who starts transmitting at this boundary?
            transmitters.clear();
            for link in 0..n {
                if done[link] || counter[link] != 0 {
                    continue;
                }
                let has_data = data[link] > 0;
                let has_empty = pending_empty[link];
                if !has_data && !has_empty {
                    done[link] = true;
                    continue;
                }
                let airtime = if has_data {
                    timing.data_airtime_for(link)
                } else {
                    timing.empty_airtime()
                };
                if timing.fits(t, airtime) {
                    transmitters.push(link);
                } else {
                    // Remark 4: not enough time left — idle out the interval.
                    done[link] = true;
                    // See PairState::hi_concede_arm_pending: a staying hi
                    // candidate whose claim no longer fits arms the concede
                    // check for the next boundary.
                    if let Some((j, true)) = role[link] {
                        if !pairs[j].hi_wants_down {
                            pairs[j].hi_concede_arm_pending = true;
                        }
                    }
                }
            }

            // Step 5: carrier-sense checks of the swap candidates, at the
            // boundary where their counter stands at 1. "Busy" means a
            // transmission starts at this very boundary (the medium is idle
            // between boundaries by construction).
            let busy_now = !transmitters.is_empty();
            for pair in pairs.iter_mut() {
                // Evaluate a concede check armed at the previous boundary,
                // then promote one staged this boundary.
                if pair.hi_concede_armed {
                    pair.hi_concede = busy_now;
                    pair.hi_concede_armed = false;
                }
                if pair.hi_concede_arm_pending {
                    pair.hi_concede_armed = true;
                    pair.hi_concede_arm_pending = false;
                }
                if pair.hi_wants_down
                    && !pair.hi_checked
                    && !done[pair.hi.index()]
                    && counter[pair.hi.index()] == 1
                {
                    pair.hi_checked = true;
                    pair.hi_busy_at_1 = busy_now;
                    if tracing {
                        trace.push(TraceEvent::SenseCheck {
                            link: pair.hi,
                            at: t,
                            busy: busy_now,
                        });
                    }
                }
                if pair.lo_wants_up
                    && !pair.lo_checked
                    && !done[pair.lo.index()]
                    && counter[pair.lo.index()] == 1
                {
                    pair.lo_checked = true;
                    pair.lo_idle_at_1 = !busy_now;
                    if tracing {
                        trace.push(TraceEvent::SenseCheck {
                            link: pair.lo,
                            at: t,
                            busy: busy_now,
                        });
                    }
                }
            }

            if transmitters.is_empty() {
                outcome.idle_slots += 1;
                t += slot;
                first_boundary = false;
                continue;
            }

            // The DP backoff construction guarantees a unique transmitter.
            debug_assert_eq!(
                transmitters.len(),
                1,
                "DP protocol must be collision-free (σ = {}, counters = {:?})",
                sigma,
                counter
            );

            if transmitters.len() == 1 {
                let link = transmitters[0];
                if let Some((j, false)) = role[link] {
                    pairs[j].lo_transmitted = true;
                }
                // Step 6: transmit until the buffer drains or time runs out,
                // holding the medium back-to-back.
                let mut now = t;
                let airtime = timing.data_airtime_for(link);
                while data[link] > 0 && timing.fits(now, airtime) {
                    let tx = medium.transmit(now, &[airtime]);
                    outcome.attempts[link] += 1;
                    let delivered = channel.attempt(LinkId::new(link), rng);
                    if delivered {
                        data[link] -= 1;
                        outcome.deliveries[link] += 1;
                        outcome.latency_sum[link] += tx.ends_at;
                    }
                    if tracing {
                        trace.push(TraceEvent::TxStart {
                            link: LinkId::new(link),
                            at: now,
                            kind: FrameKind::Data,
                        });
                        trace.push(TraceEvent::TxEnd {
                            link: LinkId::new(link),
                            at: tx.ends_at,
                            delivered,
                        });
                    }
                    now = tx.ends_at;
                }
                if data[link] == 0
                    && pending_empty[link]
                    && timing.fits(now, timing.empty_airtime())
                {
                    let tx = medium.transmit(now, &[timing.empty_airtime()]);
                    outcome.empty_packets += 1;
                    pending_empty[link] = false;
                    if tracing {
                        trace.push(TraceEvent::TxStart {
                            link: LinkId::new(link),
                            at: now,
                            kind: FrameKind::Empty,
                        });
                        trace.push(TraceEvent::TxEnd {
                            link: LinkId::new(link),
                            at: tx.ends_at,
                            delivered: false,
                        });
                    }
                    now = tx.ends_at;
                }
                done[link] = true;
                t = now + slot; // one idle slot before the next decrement
            } else {
                // Defensive generic path (unreachable for a correct DP
                // construction, checked above in debug builds): simultaneous
                // starts collide and all frames are lost.
                let airtimes: Vec<Nanos> = transmitters
                    .iter()
                    .map(|&l| {
                        if data[l] > 0 {
                            timing.data_airtime_for(l)
                        } else {
                            timing.empty_airtime()
                        }
                    })
                    // lint: allow(hot-path-alloc) — defensive collision path, unreachable for a correct DP construction
                    .collect();
                let tx = medium.transmit(t, &airtimes);
                for &l in transmitters.iter() {
                    if data[l] > 0 {
                        outcome.attempts[l] += 1;
                    } else {
                        outcome.empty_packets += 1;
                        pending_empty[l] = false;
                    }
                    done[l] = true;
                }
                // The episode is counted once through `medium.stats()` at
                // interval end (adding it here too would double-count).
                t = tx.ends_at + slot;
            }
            first_boundary = false;
        }

        // Steps 5/7: commit the handshakes and update σ for interval k+1.
        // lint: allow(hot-path-alloc) — report-owned swap list; lazily allocates only when a swap commits
        let mut swaps = Vec::new();
        for pair in pairs.iter() {
            let hi_swaps = pair.hi_swaps();
            let lo_swaps = pair.lo_swaps();
            debug_assert_eq!(
                hi_swaps, lo_swaps,
                "swap handshake diverged for pair C = {} (σ = {})",
                pair.c, sigma
            );
            if hi_swaps && lo_swaps {
                let t = AdjacentTransposition::new(pair.c);
                sigma.apply(t);
                swaps.push(t);
                if tracing {
                    trace.push(TraceEvent::SwapCommitted { upper: pair.c });
                }
            }
        }

        // Interval postconditions (cheap enough to keep in debug builds):
        // σ(k+1) must still be a bijection of 1..=N, and each drawn pair
        // commits at most one transposition, so the committed swaps are a
        // strictly-increasing subset of the drawn candidates.
        #[cfg(debug_assertions)]
        {
            // lint: allow(hot-path-alloc) — debug_assertions-only bijection check, compiled out of release builds
            let mut seen = vec![false; n];
            for &p in sigma.priorities() {
                debug_assert!(
                    p >= 1 && p <= n && !seen[p - 1],
                    "σ is no longer a permutation after interval commit: {sigma}"
                );
                seen[p - 1] = true;
            }
            debug_assert!(
                swaps.len() <= candidates.len(),
                "more swaps committed ({}) than pairs drawn ({})",
                swaps.len(),
                candidates.len()
            );
            for w in swaps.windows(2) {
                debug_assert!(
                    w[0].upper() < w[1].upper(),
                    "a drawn pair committed two swaps (uppers {} and {})",
                    w[0].upper(),
                    w[1].upper()
                );
            }
            for t in &swaps {
                debug_assert!(
                    candidates.contains(&t.upper()),
                    "committed swap at priority {} was never drawn as a candidate",
                    t.upper()
                );
            }
        }

        outcome.collisions += medium.stats().collisions;
        outcome.busy_time = medium.stats().busy_time;
        outcome.leftover = deadline.saturating_sub(medium.busy_until());
        DpIntervalReport {
            outcome,
            candidates,
            swaps,
            trace,
        }
    }
}

/// Draws `want` pairwise non-adjacent upper priorities `C` uniformly at
/// random from `{1, …, N−1}` (Step 1 of Algorithm 2 / Remark 6).
///
/// Non-adjacent means `|C_i − C_j| ≥ 2`, so the swap pairs `{C, C+1}` are
/// disjoint; the result is sorted ascending. `want` is clamped to `⌊n/2⌋`
/// (the maximum number of disjoint adjacent pairs), and the draw is empty
/// when `n < 2` or `want == 0`. This is the same sampler
/// [`DpEngine::run_interval`] uses internally for its shared candidate
/// draw; the statistical model checker (`crates/verify`) calls it directly
/// to sample the candidate-*set* dimension of a trajectory.
///
/// # Example
///
/// ```
/// use rtmac_mac::draw_nonadjacent_candidates;
/// use rtmac_sim::SeedStream;
///
/// let mut rng = SeedStream::new(7).rng(0);
/// let set = draw_nonadjacent_candidates(6, 2, &mut rng);
/// assert_eq!(set.len(), 2);
/// assert!(set.windows(2).all(|w| w[1] - w[0] >= 2));
/// assert!(set.iter().all(|&c| (1..6).contains(&c)));
/// ```
#[must_use]
pub fn draw_nonadjacent_candidates(n: usize, want: usize, rng: &mut SimRng) -> Vec<usize> {
    let mut out = Vec::new();
    let mut pool = Vec::new();
    draw_nonadjacent_candidates_into(n, want, rng, &mut out, &mut pool);
    out
}

/// Buffer-reusing form of [`draw_nonadjacent_candidates`]: writes the drawn
/// set into `out` using `pool` as shuffle scratch.
///
/// Consumes exactly the same RNG sequence as the allocating form, so a
/// caller that swaps one for the other (the batched interval kernel does)
/// keeps bit-identical traces. Both buffers are cleared first; after the
/// first call at a given `(n, want)` no further allocation occurs.
pub fn draw_nonadjacent_candidates_into(
    n: usize,
    want: usize,
    rng: &mut SimRng,
    out: &mut Vec<usize>,
    pool: &mut Vec<usize>,
) {
    out.clear();
    let want = want.min(n / 2);
    if n < 2 || want == 0 {
        return;
    }
    if want == 1 {
        out.push(rng.random_range(1..n));
        return;
    }
    // Stars-and-bars bijection: sorted non-adjacent `want`-sets of
    // {1..n−1} correspond one-to-one to plain `want`-subsets of
    // {1..n−want} via x_i = y_i + (i − 1), so drawing a uniform subset
    // and shifting yields an exactly uniform non-adjacent set in O(n).
    // (Rejection sampling degenerates near the maximum packing: at
    // n = 20, want = 10 only one of the C(19,10) = 92378 subsets is
    // non-adjacent.)
    pool.clear();
    pool.extend(1..=n - want);
    pool.shuffle(rng);
    out.extend_from_slice(&pool[..want]);
    out.sort_unstable();
    for (i, x) in out.iter_mut().enumerate() {
        *x += i;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rtmac_phy::channel::Bernoulli;
    use rtmac_phy::PhyProfile;
    use rtmac_sim::SeedStream;

    fn timing_ms(ms: u64, payload: u32) -> MacTiming {
        MacTiming::new(PhyProfile::ieee80211a(), Nanos::from_millis(ms), payload)
    }

    fn engine(n: usize) -> DpEngine {
        DpEngine::new(DpConfig::new(timing_ms(20, 1500)), n)
    }

    #[test]
    fn reliable_network_delivers_everything_when_capacity_allows() {
        let mut e = engine(4);
        let mut ch = Bernoulli::reliable(4);
        let mut rng = SeedStream::new(1).rng(0);
        let report = e.run_interval(&[3, 2, 1, 4], &[0.5; 4], &mut ch, &mut rng);
        assert_eq!(report.outcome.deliveries, [3, 2, 1, 4]);
        assert_eq!(report.outcome.total_attempts(), 10);
        assert_eq!(report.outcome.collisions, 0);
    }

    #[test]
    fn is_collision_free_across_many_random_intervals() {
        let mut e = engine(10);
        let mut ch = Bernoulli::new(vec![0.7; 10]).unwrap();
        let mut rng = SeedStream::new(2).rng(0);
        for k in 0..200 {
            let arrivals: Vec<u32> = (0..10).map(|i| ((k + i) % 4) as u32).collect();
            let report = e.run_interval(&arrivals, &[0.3; 10], &mut ch, &mut rng);
            assert_eq!(report.outcome.collisions, 0, "collision at interval {k}");
        }
    }

    #[test]
    fn priority_determines_service_order() {
        // Overload the interval so only the highest-priority links get
        // through: N links each with a full buffer.
        let timing = timing_ms(2, 100); // 16 transmissions fit
        let mut e = DpEngine::new(DpConfig::new(timing).with_swap_pairs(0), 4);
        let mut ch = Bernoulli::reliable(4);
        let mut rng = SeedStream::new(3).rng(0);
        // Reverse priorities: link 3 is highest.
        e.set_sigma(Permutation::from_priorities(vec![4, 3, 2, 1]).unwrap());
        let report = e.run_interval(&[10, 10, 10, 10], &[0.5; 4], &mut ch, &mut rng);
        // 16 slots: link3 gets 10, link2 gets 6 (minus backoff overhead,
        // possibly 5), links 1 and 0 get nothing.
        assert_eq!(report.outcome.deliveries[3], 10);
        assert!(report.outcome.deliveries[2] >= 4);
        assert_eq!(report.outcome.deliveries[0], 0);
        assert!(report.swaps.is_empty());
    }

    #[test]
    fn swap_pairs_zero_never_reorders() {
        let mut e = DpEngine::new(DpConfig::new(timing_ms(20, 1500)).with_swap_pairs(0), 6);
        let before = e.sigma().clone();
        let mut ch = Bernoulli::reliable(6);
        let mut rng = SeedStream::new(4).rng(0);
        for _ in 0..50 {
            let r = e.run_interval(&[1; 6], &[0.5; 6], &mut ch, &mut rng);
            assert!(r.candidates.is_empty());
            assert!(r.swaps.is_empty());
        }
        assert_eq!(e.sigma(), &before);
    }

    #[test]
    fn forced_swap_exchanges_the_candidate_pair() {
        // μ near 1 for the lower candidate and near 0 for the upper one
        // makes ξ_lo = +1 and ξ_hi = −1 almost surely, so candidates swap
        // whenever drawn. With N = 2 the pair is always (1, 2).
        let mut e = DpEngine::new(DpConfig::new(timing_ms(20, 1500)), 2);
        let mut ch = Bernoulli::reliable(2);
        let mut rng = SeedStream::new(5).rng(0);
        // link0 has priority 1 (upper candidate): wants down with 1−μ0.
        let mu = [1e-9, 1.0 - 1e-9];
        let r = e.run_interval(&[1, 1], &mu, &mut ch, &mut rng);
        assert_eq!(r.candidates, [1]);
        assert_eq!(r.swaps, [AdjacentTransposition::new(1)]);
        assert_eq!(e.sigma().priorities(), [2, 1]);
    }

    #[test]
    fn refused_swap_keeps_priorities() {
        // μ flipped: upper wants to stay up, lower wants to stay down.
        let mut e = DpEngine::new(DpConfig::new(timing_ms(20, 1500)), 2);
        let mut ch = Bernoulli::reliable(2);
        let mut rng = SeedStream::new(6).rng(0);
        let mu = [1.0 - 1e-9, 1e-9];
        let r = e.run_interval(&[1, 1], &mu, &mut ch, &mut rng);
        assert!(r.swaps.is_empty());
        assert_eq!(e.sigma().priorities(), [1, 2]);
    }

    #[test]
    fn empty_packets_claim_priority_without_arrivals() {
        // No arrivals anywhere: only the two candidates transmit empty
        // packets; the swap still completes.
        let mut e = DpEngine::new(DpConfig::new(timing_ms(20, 1500)), 3);
        let mut ch = Bernoulli::reliable(3);
        let mut rng = SeedStream::new(7).rng(0);
        let mu = [1e-9, 1e-9, 1.0 - 1e-9];
        // Try a few intervals; whenever the drawn pair is (link at C wants
        // down, link at C+1 wants up) the swap happens. Just verify empty
        // packets are sent and no data attempts occur.
        let r = e.run_interval(&[0, 0, 0], &mu, &mut ch, &mut rng);
        assert_eq!(r.outcome.total_attempts(), 0);
        assert_eq!(r.outcome.total_deliveries(), 0);
        assert_eq!(r.outcome.empty_packets, 2);
    }

    #[test]
    fn no_swap_when_interval_too_short_for_any_frame() {
        // Deadline shorter than even an empty frame: nothing can transmit,
        // so the handshake cannot complete (the R_i + R_j >= 1 term of
        // Eq. 9) and priorities stay.
        let timing = MacTiming::new(PhyProfile::ieee80211a(), Nanos::from_micros(40), 1500);
        let mut e = DpEngine::new(DpConfig::new(timing), 2);
        let mut ch = Bernoulli::reliable(2);
        let mut rng = SeedStream::new(8).rng(0);
        let mu = [1e-9, 1.0 - 1e-9]; // would swap if they could transmit
        for _ in 0..20 {
            let r = e.run_interval(&[0, 0], &mu, &mut ch, &mut rng);
            assert!(r.swaps.is_empty());
            assert_eq!(r.outcome.empty_packets, 0);
        }
        assert_eq!(e.sigma().priorities(), [1, 2]);
    }

    #[test]
    fn unreliable_channel_retries_until_deadline() {
        // One link, p = 0.5: attempts keep going until the buffer drains or
        // the interval ends; attempts >= deliveries.
        let mut e = DpEngine::new(DpConfig::new(timing_ms(2, 100)), 1);
        let mut ch = Bernoulli::new(vec![0.5]).unwrap();
        let mut rng = SeedStream::new(9).rng(0);
        let r = e.run_interval(&[8], &[0.5], &mut ch, &mut rng);
        assert!(r.outcome.attempts[0] >= r.outcome.deliveries[0]);
        assert!(r.outcome.attempts[0] <= 16);
        assert!(r.outcome.deliveries[0] <= 8);
    }

    #[test]
    fn backoff_overhead_costs_at_most_a_couple_transmissions() {
        // The paper: DB-DP has "1 or 2 fewer transmissions per interval"
        // than the 60 of LDF in the video setting.
        let mut e = engine(20);
        let mut ch = Bernoulli::reliable(20);
        let mut rng = SeedStream::new(10).rng(0);
        // Saturate: plenty of packets everywhere.
        let r = e.run_interval(&[6; 20], &[0.5; 20], &mut ch, &mut rng);
        let total = r.outcome.total_deliveries();
        assert!(
            (58..=61).contains(&total),
            "expected ~59-61 deliveries, got {total}"
        );
    }

    #[test]
    fn multi_pair_draws_disjoint_pairs_and_swaps_consistently() {
        let mut e = DpEngine::new(DpConfig::new(timing_ms(20, 1500)).with_swap_pairs(3), 10);
        let mut ch = Bernoulli::reliable(10);
        let mut rng = SeedStream::new(11).rng(0);
        for _ in 0..100 {
            let r = e.run_interval(&[1; 10], &[0.5; 10], &mut ch, &mut rng);
            assert_eq!(r.candidates.len(), 3);
            let mut sorted = r.candidates.clone();
            sorted.sort_unstable();
            assert!(sorted.windows(2).all(|w| w[1] - w[0] >= 2));
            assert_eq!(r.outcome.collisions, 0);
            // σ must remain a valid permutation.
            assert!(Permutation::from_priorities(e.sigma().priorities().to_vec()).is_ok());
        }
    }

    /// Reproduces Example 2 / Fig. 2 of the paper exactly: N = 4 links,
    /// p_n = 1, one packet each, σ(1) = [1,2,3,4], candidates C = 2. With
    /// ξ_2 = −1 (β_2 = 3) and ξ_3 = +1 (β_3 = 2), links 2 and 3 exchange
    /// priorities and σ(2) = [1,3,2,4]. The trace pins the whole timeline.
    #[test]
    fn paper_example_2_timeline() {
        let slot = Nanos::from_micros(9);
        let airtime = PhyProfile::ieee80211a().packet_exchange_airtime(1500); // 326 µs
        let timing = timing_ms(20, 1500);
        let mut e = DpEngine::new(DpConfig::new(timing).with_trace(true), 4);
        let mut ch = Bernoulli::reliable(4);
        let mut rng = SeedStream::new(0).rng(0);
        // Paper's link 2 = our link index 1 (wants down: μ ≈ 0);
        // paper's link 3 = our link index 2 (wants up: μ ≈ 1).
        let mu = [0.5, 1e-12, 1.0 - 1e-12, 0.5];
        let report = e.run_interval_with_candidates(&[1; 4], &mu, &[2], &mut ch, &mut rng);

        // Backoffs per Eq. 6 / Fig. 2: β = [0, 3, 2, 5].
        let backoffs: Vec<(usize, u64)> = report
            .trace
            .iter()
            .filter_map(|ev| match ev {
                TraceEvent::BackoffSet { link, counter } => Some((link.index(), *counter)),
                _ => None,
            })
            .collect();
        assert_eq!(backoffs, [(0, 0), (1, 3), (2, 2), (3, 5)]);

        // Transmission order and exact start times:
        //   link 0 at t = 0,
        //   link 2 at A + 2 slots (its counter 2 drains in two idle slots),
        //   link 1 at 2A + 3 slots (frozen at 1 during link 2's frame),
        //   link 3 at 3A + 5 slots (β = 5, one decrement after each of the
        //   three frames plus two trailing idle slots).
        let starts: Vec<(usize, Nanos)> = report
            .trace
            .iter()
            .filter_map(|ev| match ev {
                TraceEvent::TxStart { link, at, kind } => {
                    assert_eq!(*kind, FrameKind::Data);
                    Some((link.index(), *at))
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            starts,
            [
                (0, Nanos::ZERO),
                (2, airtime + slot * 2),
                (1, airtime * 2 + slot * 3),
                (3, airtime * 3 + slot * 5),
            ]
        );

        // Both candidates sensed at counter 1: lo heard idle, hi heard busy.
        let checks: Vec<(usize, bool)> = report
            .trace
            .iter()
            .filter_map(|ev| match ev {
                TraceEvent::SenseCheck { link, busy, .. } => Some((link.index(), *busy)),
                _ => None,
            })
            .collect();
        assert_eq!(checks, [(2, false), (1, true)]);

        // The swap committed: σ(2) = [1,3,2,4].
        assert_eq!(report.swaps, [AdjacentTransposition::new(2)]);
        assert!(report
            .trace
            .contains(&TraceEvent::SwapCommitted { upper: 2 }));
        assert_eq!(e.sigma().priorities(), [1, 3, 2, 4]);
        assert_eq!(report.outcome.deliveries, [1, 1, 1, 1]);
    }

    /// All four ξ combinations of a single pair, pinned deterministically:
    /// the swap commits iff (hi wants down) AND (lo wants up), matching
    /// Eq. 9's (1−μ_i)·μ_j structure.
    #[test]
    fn handshake_truth_table() {
        for (hi_up, lo_up, expect_swap) in [
            (true, true, false),   // hi stays, lo wants up -> blocked
            (true, false, false),  // both stay
            (false, true, true),   // hi down, lo up -> swap
            (false, false, false), // hi wants down, lo stays
        ] {
            let mut e = DpEngine::new(DpConfig::new(timing_ms(20, 1500)), 2);
            let mut ch = Bernoulli::reliable(2);
            let mut rng = SeedStream::new(9).rng(0);
            let eps = 1e-12;
            let mu = [
                if hi_up { 1.0 - eps } else { eps },
                if lo_up { 1.0 - eps } else { eps },
            ];
            let r = e.run_interval_with_candidates(&[1, 1], &mu, &[1], &mut ch, &mut rng);
            assert_eq!(
                !r.swaps.is_empty(),
                expect_swap,
                "hi_up={hi_up} lo_up={lo_up}"
            );
            let expected = if expect_swap { [2, 1] } else { [1, 2] };
            assert_eq!(e.sigma().priorities(), expected);
        }
    }

    /// The deadline corner case the paper leaves unspecified: hi chose to
    /// stay (ξ = +1) but its data frame no longer fits, while lo's shorter
    /// empty claim does. lo senses idle at counter 1 and infers "hi wants
    /// down"; the concede rule makes hi agree, keeping σ consistent.
    #[test]
    fn concede_path_keeps_sigma_consistent() {
        // N = 2, C = 1: hi = link0 (priority 1, ξ = +1 -> β = 0),
        // lo = link1 (priority 2, ξ = +1 -> β = 1).
        // Deadline: one empty frame (62 µs) fits after one slot, but a
        // data frame (326 µs) does not fit at t = 0.
        let timing = MacTiming::new(PhyProfile::ieee80211a(), Nanos::from_micros(200), 1500);
        let mut e = DpEngine::new(DpConfig::new(timing).with_trace(true), 2);
        let mut ch = Bernoulli::reliable(2);
        let mut rng = SeedStream::new(3).rng(0);
        let eps = 1e-12;
        // hi has a data packet (doesn't fit); lo has no arrival -> empty
        // claim frame (fits).
        let mu = [1.0 - eps, 1.0 - eps];
        let r = e.run_interval_with_candidates(&[1, 0], &mu, &[1], &mut ch, &mut rng);
        // lo transmitted its empty claim; hi conceded; both swapped.
        assert_eq!(r.outcome.empty_packets, 1);
        assert_eq!(r.outcome.attempts, [0, 0], "hi's data frame never fit");
        assert_eq!(r.swaps, [AdjacentTransposition::new(1)]);
        assert_eq!(e.sigma().priorities(), [2, 1]);
    }

    /// Same corner but lo's frame does not fit either: nothing transmits,
    /// nobody concedes, σ unchanged.
    #[test]
    fn concede_requires_lo_transmission() {
        let timing = MacTiming::new(PhyProfile::ieee80211a(), Nanos::from_micros(60), 1500);
        let mut e = DpEngine::new(DpConfig::new(timing), 2);
        let mut ch = Bernoulli::reliable(2);
        let mut rng = SeedStream::new(4).rng(0);
        let eps = 1e-12;
        let mu = [1.0 - eps, 1.0 - eps];
        // Both have data frames (326 µs) that can never fit in 60 µs; lo's
        // would-be empty frame is not generated because it has an arrival.
        let r = e.run_interval_with_candidates(&[1, 1], &mu, &[1], &mut ch, &mut rng);
        assert!(r.swaps.is_empty());
        assert_eq!(r.outcome.total_deliveries(), 0);
        assert_eq!(e.sigma().priorities(), [1, 2]);
    }

    #[test]
    fn trace_is_empty_when_disabled() {
        let mut e = engine(3);
        let mut ch = Bernoulli::reliable(3);
        let mut rng = SeedStream::new(1).rng(0);
        let report = e.run_interval(&[1; 3], &[0.5; 3], &mut ch, &mut rng);
        assert!(report.trace.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-adjacent")]
    fn adjacent_candidate_set_rejected() {
        let mut e = engine(6);
        let mut ch = Bernoulli::reliable(6);
        let mut rng = SeedStream::new(1).rng(0);
        let _ = e.run_interval_with_candidates(&[1; 6], &[0.5; 6], &[2, 3], &mut ch, &mut rng);
    }

    /// Mixed payloads on one medium: a 100 B control link squeezes its
    /// frame into tail time a 1500 B video frame cannot use.
    #[test]
    fn heterogeneous_payloads_share_the_interval() {
        // Deadline fits one 326 µs video frame plus one 118 µs control
        // frame (444 µs + slots), but not two video frames.
        let timing = MacTiming::new(PhyProfile::ieee80211a(), Nanos::from_micros(500), 1500)
            .with_link_payloads(&[1500, 100]);
        let mut e = DpEngine::new(DpConfig::new(timing).with_swap_pairs(0), 2);
        let mut ch = Bernoulli::reliable(2);
        let mut rng = SeedStream::new(1).rng(0);
        let r = e.run_interval(&[2, 2], &[0.5, 0.5], &mut ch, &mut rng);
        // Video link (priority 1) sends one frame; its second doesn't fit.
        assert_eq!(r.outcome.deliveries[0], 1);
        // Control link still delivers one 118 µs frame in the remainder.
        assert_eq!(r.outcome.deliveries[1], 1);
    }

    #[test]
    fn single_link_network_just_transmits() {
        let mut e = DpEngine::new(DpConfig::new(timing_ms(2, 100)), 1);
        let mut ch = Bernoulli::reliable(1);
        let mut rng = SeedStream::new(12).rng(0);
        let r = e.run_interval(&[5], &[0.5], &mut ch, &mut rng);
        assert_eq!(r.outcome.deliveries, [5]);
        assert!(r.candidates.is_empty());
    }

    #[test]
    #[should_panic(expected = "must lie in (0, 1)")]
    fn mu_out_of_range_panics() {
        let mut e = engine(2);
        let mut ch = Bernoulli::reliable(2);
        let mut rng = SeedStream::new(0).rng(0);
        let _ = e.run_interval(&[1, 1], &[0.0, 0.5], &mut ch, &mut rng);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Core protocol invariants over random workloads: never a
        /// collision, σ stays a valid permutation, per-link deliveries never
        /// exceed arrivals, and the swap handshake never diverges (the
        /// debug assertions inside run_interval enforce agreement).
        #[test]
        fn prop_dp_invariants(
            n in 2usize..8,
            seed in 0u64..500,
            intervals in 1usize..30,
            pairs in 0usize..3,
        ) {
            let timing = MacTiming::new(
                PhyProfile::ieee80211a(),
                Nanos::from_millis(5),
                300,
            );
            let mut e = DpEngine::new(DpConfig::new(timing).with_swap_pairs(pairs), n);
            let seeds = SeedStream::new(seed);
            let mut rng = seeds.rng(0);
            let mut arr_rng = seeds.rng(1);
            let mut ch = Bernoulli::new(vec![0.6; n]).unwrap();
            for _ in 0..intervals {
                let arrivals: Vec<u32> =
                    (0..n).map(|_| arr_rng.random_range(0..4)).collect();
                let mu: Vec<f64> = (0..n).map(|_| arr_rng.random_range(0.05..0.95)).collect();
                let r = e.run_interval(&arrivals, &mu, &mut ch, &mut rng);
                prop_assert_eq!(r.outcome.collisions, 0);
                for (link, &d) in r.outcome.deliveries.iter().enumerate() {
                    prop_assert!(
                        d <= u64::from(arrivals[link]),
                        "link {} delivered {} of {}", link, d, arrivals[link]
                    );
                }
                prop_assert!(
                    Permutation::from_priorities(e.sigma().priorities().to_vec()).is_ok()
                );
                // Every committed swap corresponds to exactly one drawn
                // candidate pair: at most |C(k)| swaps, each at a drawn
                // upper priority, and no upper priority swaps twice.
                prop_assert!(r.swaps.len() <= r.candidates.len());
                for (i, t) in r.swaps.iter().enumerate() {
                    prop_assert!(
                        r.candidates.contains(&t.upper()),
                        "swap at {} not among drawn candidates {:?}",
                        t.upper(),
                        r.candidates
                    );
                    if i > 0 {
                        prop_assert!(r.swaps[i - 1].upper() < t.upper());
                    }
                }
                if pairs <= 1 {
                    // The paper's configuration: at most one adjacent pair
                    // exchanges priorities per interval.
                    prop_assert!(r.swaps.len() <= 1);
                }
                // Busy time can never exceed the interval.
                prop_assert!(r.outcome.busy_time <= Nanos::from_millis(5));
            }
        }
    }
}
