//! Aggregated results of a multi-interval simulation run.

use rtmac_mac::FaultStats;

use crate::admission::AdmissionReport;
use rtmac_model::metrics::{ConvergenceTracker, DeficiencySeries};
use rtmac_model::LinkId;
use rtmac_sim::Nanos;

/// Everything a figure needs from one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Policy name.
    pub policy: String,
    /// Number of intervals simulated.
    pub intervals: usize,
    /// Total timely-throughput deficiency after each interval
    /// (Definition 1) — the paper's y-axis.
    pub deficiency: DeficiencySeries,
    /// Final total deficiency (last entry of `deficiency`).
    pub final_total_deficiency: f64,
    /// Empirical per-link timely-throughput `Σ_k S_n(k) / K`.
    pub per_link_throughput: Vec<f64>,
    /// Final per-link delivery debts `d_n(K)`.
    pub final_debts: Vec<f64>,
    /// Total data transmission attempts per link.
    pub attempts: Vec<u64>,
    /// Mean in-interval delivery latency per link (`None` for links that
    /// never delivered): how deep into the deadline window packets land on
    /// average.
    pub mean_latency: Vec<Option<Nanos>>,
    /// Total collision episodes across the run.
    pub collisions: u64,
    /// Total empty priority-claim packets (DP-family policies).
    pub empty_packets: u64,
    /// Total idle backoff slots.
    pub idle_slots: u64,
    /// Total medium-busy time.
    pub busy_time: Nanos,
    /// Convergence tracker for the watched link, when one was configured
    /// via [`crate::NetworkBuilder::track_link`].
    pub tracked: Option<ConvergenceTracker>,
    /// Fault-injection counters (divergences, recovery fallbacks,
    /// reconvergence times) when the run used the degraded DB-DP path via
    /// [`crate::NetworkBuilder::fault`]; `None` for pristine runs.
    pub fault: Option<FaultStats>,
    /// Admission-control outcome (final admitted set, accept/reject/shed
    /// counters, peak utilization) when the run used the gate via
    /// [`crate::NetworkBuilder::admission`]; `None` otherwise.
    pub admission: Option<AdmissionReport>,
}

impl RunReport {
    /// Per-link deficiency `(q_n − throughput_n)⁺` given the requirements
    /// used in the run.
    ///
    /// # Panics
    ///
    /// Panics if `requirements.len()` differs from the link count.
    #[must_use]
    pub fn per_link_deficiency(&self, requirements: &[f64]) -> Vec<f64> {
        assert_eq!(
            requirements.len(),
            self.per_link_throughput.len(),
            "requirements must cover every link"
        );
        requirements
            .iter()
            .zip(&self.per_link_throughput)
            .map(|(q, tp)| (q - tp).max(0.0))
            .collect()
    }

    /// Sum of deficiencies over a subset of links (the group-wide metric of
    /// Figs. 7–8).
    ///
    /// # Panics
    ///
    /// Panics if a link is out of range or `requirements.len()` differs
    /// from the link count.
    #[must_use]
    pub fn group_deficiency(&self, requirements: &[f64], group: &[LinkId]) -> f64 {
        let per_link = self.per_link_deficiency(requirements);
        group.iter().map(|l| per_link[l.index()]).sum()
    }

    /// Mean of the last 20% of the deficiency series — a steadier summary
    /// than the single final value.
    #[must_use]
    pub fn steady_state_deficiency(&self) -> f64 {
        self.deficiency.tail_mean(0.2).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        let mut deficiency = DeficiencySeries::new();
        for v in [3.0, 2.0, 1.0, 0.5, 0.5] {
            deficiency.push(v);
        }
        RunReport {
            policy: "test".into(),
            intervals: 5,
            final_total_deficiency: 0.5,
            deficiency,
            per_link_throughput: vec![0.8, 0.4],
            final_debts: vec![0.0, 1.0],
            attempts: vec![10, 5],
            mean_latency: vec![Some(Nanos::from_micros(500)), None],
            collisions: 0,
            empty_packets: 0,
            idle_slots: 0,
            busy_time: Nanos::ZERO,
            tracked: None,
            fault: None,
            admission: None,
        }
    }

    #[test]
    fn per_link_deficiency_clamps_at_zero() {
        let r = report();
        let d = r.per_link_deficiency(&[0.5, 0.9]);
        assert_eq!(d[0], 0.0); // over-delivering link
        assert!((d[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn group_deficiency_sums_members() {
        let r = report();
        let g1 = r.group_deficiency(&[0.9, 0.9], &[LinkId::new(0)]);
        let g2 = r.group_deficiency(&[0.9, 0.9], &[LinkId::new(1)]);
        assert!((g1 - 0.1).abs() < 1e-12);
        assert!((g2 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn steady_state_uses_tail() {
        assert_eq!(report().steady_state_deficiency(), 0.5);
    }
}
