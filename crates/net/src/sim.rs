//! The sim backend: the decision trace of a pure, transport-free run.
//!
//! [`sim_trace`] steps one central [`Network`] and synthesizes the exact
//! activity frames a deployment's link nodes would broadcast — through the
//! same [`link_frame`] constructor the nodes use, absorbed in the same
//! canonical order. Its fingerprint is the reference side of the replay
//! contract: loopback and UDP runs must reproduce it bit for bit.

use rtmac::scenario::Scenario;
use rtmac::{Network, RunReport};
use rtmac_mac::{IntervalOutcome, LinkActivity};
use rtmac_model::LinkId;

use crate::error::NetError;
use crate::frame::{Activity, Frame};
use crate::trace::{fnv1a, state_digest, DecisionTrace, FNV_OFFSET};

/// Digests a full scenario configuration into one u64.
///
/// Beacons carry it so a deployment whose nodes disagree on *any*
/// configuration detail — link count, traffic parameters, policy, seed,
/// engine, fault spec — refuses to start instead of desyncing later. The
/// digest folds the scenario's complete debug rendering, which is plain
/// data and covers every field.
///
/// # Example
///
/// ```
/// use rtmac_net::scenario_digest;
///
/// let sc = rtmac::scenario::by_name("tiny").unwrap();
/// assert_eq!(scenario_digest(&sc), scenario_digest(&sc.clone()));
/// assert_ne!(scenario_digest(&sc), scenario_digest(&sc.with_seed(1)));
/// ```
#[must_use]
pub fn scenario_digest(sc: &Scenario) -> u64 {
    fnv1a(FNV_OFFSET, format!("{sc:?}").as_bytes())
}

/// Builds the activity frame link `link` broadcasts for the interval that
/// [`Network::step`] just completed.
///
/// This is the single point where engine state becomes wire content — the
/// lockstep nodes and [`sim_trace`] both call it, which is what makes the
/// replay contract an equality of byte streams rather than a coincidence:
///
/// * the kind comes from [`IntervalOutcome::link_activity`] (claim when the
///   link transmitted, busy when it had backlog but deferred, idle
///   otherwise);
/// * `rank` is the link's position under the post-interval σ (its own
///   index when the policy keeps no permutation);
/// * `state_digest` commits to the post-interval σ and every link's debt.
///
/// # Panics
///
/// Panics if `link` is out of range for the network, or if `outcome` is
/// not the outcome of `net`'s most recent step (slice lengths mismatch).
///
/// # Example
///
/// ```
/// use rtmac_net::{link_frame, FrameKind};
///
/// let sc = rtmac::scenario::by_name("tiny").unwrap();
/// let mut net = sc.network().unwrap();
/// let outcome = net.step();
/// let frame = link_frame(&net, &outcome, 0, 2);
/// assert_eq!(frame.activity().unwrap().link, 2);
/// // tiny has constant arrivals, so nobody is ever idle at interval 0.
/// assert_ne!(frame.kind(), FrameKind::Idle);
/// ```
#[must_use]
pub fn link_frame(net: &Network, outcome: &IntervalOutcome, interval: u64, link: usize) -> Frame {
    let arrivals = net.last_arrivals()[link];
    let sigma = net.sigma();
    let rank = match sigma {
        Some(sigma) => saturate_u32(sigma.priority_of(LinkId::new(link)) as u64),
        None => saturate_u32(link as u64),
    };
    let body = Activity {
        interval,
        link: saturate_u32(link as u64),
        rank,
        backlog: arrivals,
        deliveries: saturate_u32(outcome.deliveries[link]),
        attempts: saturate_u32(outcome.attempts[link]),
        state_digest: state_digest(interval, sigma, net.debts().debts()),
    };
    match outcome.link_activity(link, arrivals) {
        LinkActivity::Claim => Frame::Claim(body),
        LinkActivity::Busy => Frame::Busy(body),
        LinkActivity::Idle => Frame::Idle(body),
    }
}

fn saturate_u32(x: u64) -> u32 {
    u32::try_from(x).unwrap_or(u32::MAX)
}

/// The result of a sim-backend trace run.
#[derive(Debug, Clone)]
pub struct SimTrace {
    /// Decision-trace fingerprint (the replay contract's reference value).
    pub fingerprint: u64,
    /// Frames absorbed (`links × intervals`).
    pub frames: u64,
    /// The ordinary simulation report of the same run.
    pub report: RunReport,
}

/// Runs `intervals` intervals of `sc` through the pure simulator and
/// returns the decision-trace fingerprint plus the usual report.
///
/// # Errors
///
/// Returns [`NetError::Config`] when the scenario does not build.
///
/// # Panics
///
/// Propagates policy-engine panics, as in [`Network::step`].
///
/// # Example
///
/// ```
/// use rtmac_net::sim_trace;
///
/// let sc = rtmac::scenario::by_name("tiny").unwrap();
/// let a = sim_trace(&sc, 10).unwrap();
/// let b = sim_trace(&sc, 10).unwrap();
/// assert_eq!(a.fingerprint, b.fingerprint);
/// assert_eq!(a.frames, 30);
/// ```
pub fn sim_trace(sc: &Scenario, intervals: usize) -> Result<SimTrace, NetError> {
    let mut net = sc.network()?;
    let n = sc.links;
    let mut trace = DecisionTrace::new();
    for interval in 0..intervals {
        let outcome = net.step();
        for link in 0..n {
            trace.absorb(&link_frame(&net, &outcome, interval as u64, link));
        }
    }
    Ok(SimTrace {
        fingerprint: trace.fingerprint(),
        frames: trace.frames(),
        report: net.report(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtmac::scenario;

    #[test]
    fn fingerprint_depends_on_seed_and_horizon() {
        let sc = scenario::by_name("tiny").unwrap();
        let base = sim_trace(&sc, 20).unwrap();
        assert_ne!(
            base.fingerprint,
            sim_trace(&sc.clone().with_seed(1), 20).unwrap().fingerprint
        );
        assert_ne!(base.fingerprint, sim_trace(&sc, 21).unwrap().fingerprint);
        assert_eq!(base.report.intervals, 20);
    }

    #[test]
    fn non_dp_policies_trace_too() {
        // No σ: ranks fall back to link indices, the digest marks σ absent.
        let sc = scenario::by_name("tiny")
            .unwrap()
            .with_policy(rtmac::PolicySpec::Ldf);
        let run = sim_trace(&sc, 5).unwrap();
        assert_eq!(run.frames, 15);
    }

    #[test]
    fn engine_choice_does_not_move_the_fingerprint() {
        // The batched kernel is bit-identical to the timeline engine, so
        // the decision trace — built from engine outputs — must agree.
        let sc = scenario::by_name("control10").unwrap();
        let timeline = sim_trace(&sc, 50).unwrap();
        let batched = sim_trace(
            &sc.clone().with_engine(rtmac::scenario::EngineSpec::Batched),
            50,
        )
        .unwrap();
        assert_eq!(timeline.fingerprint, batched.fingerprint);
    }
}
