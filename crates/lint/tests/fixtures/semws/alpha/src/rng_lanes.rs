//! RNG-lane fixture: a raw constructor outside the seed substrate, and
//! two draws from the same lane constant on one stream.

pub fn raw_constructor(seed: u64) -> u64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    rng.next_u64()
}

pub fn duplicate_lanes(seeds: &SeedStream) -> (SimRng, SimRng) {
    let first = seeds.rng(3);
    let second = seeds.rng(3);
    (first, second)
}

pub fn distinct_lanes(seeds: &SeedStream) -> (SimRng, SimRng) {
    let arrivals = seeds.rng(0);
    let protocol = seeds.rng(1);
    (arrivals, protocol)
}
