//! Transmission priority vectors: permutations of `{1, …, N}`
//! (Definitions 7–9 of the paper).

use std::fmt;

use crate::LinkId;

/// An adjacent transposition: the exchange of priorities `m` and `m+1`
/// between the two links currently holding them (Definition 8).
///
/// `m` is the *upper* (numerically smaller, higher-ranked) of the two
/// priority indices, so `m ∈ {1, …, N−1}`. In the DP protocol the randomly
/// drawn swap candidate `C(k)` is exactly such an `m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AdjacentTransposition {
    upper: usize,
}

impl AdjacentTransposition {
    /// Creates the transposition of priorities `upper` and `upper + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `upper == 0` (priorities are 1-based).
    #[must_use]
    pub fn new(upper: usize) -> Self {
        assert!(upper >= 1, "priorities are 1-based");
        AdjacentTransposition { upper }
    }

    /// The higher (smaller-index) of the two priorities exchanged.
    #[must_use]
    pub fn upper(self) -> usize {
        self.upper
    }

    /// The lower (larger-index) of the two priorities exchanged.
    #[must_use]
    pub fn lower(self) -> usize {
        self.upper + 1
    }
}

impl fmt::Display for AdjacentTransposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "swap({}, {})", self.upper, self.upper + 1)
    }
}

/// A transmission priority vector `σ = [σ_1, …, σ_N]`: a bijection from
/// links to priority indices `1..=N`, where index 1 is the highest priority
/// (Definition 7 and Section IV-A).
///
/// # Example
///
/// ```
/// use rtmac_model::{AdjacentTransposition, LinkId, Permutation};
///
/// // Example 1 of the paper: σ = [2,1,4,3], σ' = [2,4,1,3].
/// let sigma = Permutation::from_priorities(vec![2, 1, 4, 3])?;
/// let sigma_p = Permutation::from_priorities(vec![2, 4, 1, 3])?;
/// // Symmetric difference σ △ σ' = {links 2, 3} (1-based) = {1, 2} zero-based.
/// assert_eq!(sigma.symmetric_difference(&sigma_p),
///            vec![LinkId::new(1), LinkId::new(2)]);
///
/// // The DP protocol's reordering step: the links holding priorities 1 and 2
/// // exchange them.
/// let swapped = sigma.with(AdjacentTransposition::new(1));
/// assert_eq!(swapped.priorities(), [1, 2, 4, 3]);
/// assert_eq!(sigma.adjacent_transposition_to(&swapped),
///            Some(AdjacentTransposition::new(1)));
/// # Ok::<(), rtmac_model::ConfigError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Permutation {
    /// `priority_of[link] ∈ 1..=N`.
    priority_of: Vec<usize>,
    /// `link_at[priority − 1] = link` — the inverse map.
    link_at: Vec<usize>,
}

impl Permutation {
    /// The identity ordering: link `n` holds priority `n + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        assert!(n >= 1, "a permutation needs at least one element");
        Permutation {
            priority_of: (1..=n).collect(),
            link_at: (0..n).collect(),
        }
    }

    /// Creates a permutation from the per-link priority vector
    /// (`priorities[link] ∈ 1..=N`, each exactly once).
    ///
    /// # Errors
    ///
    /// Returns [`crate::ConfigError::InvalidParameter`] if the vector is
    /// empty or is not a bijection onto `1..=N`.
    pub fn from_priorities(priorities: Vec<usize>) -> Result<Self, crate::ConfigError> {
        let n = priorities.len();
        if n == 0 {
            return Err(crate::ConfigError::InvalidParameter {
                name: "permutation length",
                value: 0.0,
            });
        }
        let mut link_at = vec![usize::MAX; n];
        for (link, &p) in priorities.iter().enumerate() {
            if p < 1 || p > n || link_at[p - 1] != usize::MAX {
                return Err(crate::ConfigError::InvalidParameter {
                    name: "priority vector",
                    value: p as f64,
                });
            }
            link_at[p - 1] = link;
        }
        Ok(Permutation {
            priority_of: priorities,
            link_at,
        })
    }

    /// Creates a permutation from a service order: `order[0]` gets priority
    /// 1, `order[1]` priority 2, and so on.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ConfigError::InvalidParameter`] if `order` is empty
    /// or repeats / skips a link.
    pub fn from_order(order: &[LinkId]) -> Result<Self, crate::ConfigError> {
        let n = order.len();
        let mut priorities = vec![0usize; n];
        for (pos, link) in order.iter().enumerate() {
            let idx = link.index();
            if idx >= n || priorities[idx] != 0 {
                return Err(crate::ConfigError::InvalidParameter {
                    name: "service order",
                    value: idx as f64,
                });
            }
            priorities[idx] = pos + 1;
        }
        Self::from_priorities(priorities)
    }

    /// Number of links `N`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.priority_of.len()
    }

    /// Returns `true` if the permutation is empty (never constructible).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.priority_of.is_empty()
    }

    /// The priority index `σ_n ∈ 1..=N` of a link (1 = highest).
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    #[must_use]
    pub fn priority_of(&self, link: LinkId) -> usize {
        self.priority_of[link.index()]
    }

    /// The link currently holding priority `p ∈ 1..=N`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn link_with_priority(&self, p: usize) -> LinkId {
        assert!(p >= 1 && p <= self.len(), "priority out of range");
        LinkId::new(self.link_at[p - 1])
    }

    /// Links ordered from highest (priority 1) to lowest priority.
    #[must_use]
    pub fn service_order(&self) -> Vec<LinkId> {
        self.link_at.iter().map(|&l| LinkId::new(l)).collect()
    }

    /// The raw per-link priority vector.
    #[must_use]
    pub fn priorities(&self) -> &[usize] {
        &self.priority_of
    }

    /// Applies an adjacent transposition in place: the links holding
    /// priorities `t.upper()` and `t.lower()` exchange them.
    ///
    /// # Panics
    ///
    /// Panics if `t.lower()` exceeds `N`.
    pub fn apply(&mut self, t: AdjacentTransposition) {
        let (hi, lo) = (t.upper(), t.lower());
        assert!(lo <= self.len(), "transposition out of range");
        let a = self.link_at[hi - 1];
        let b = self.link_at[lo - 1];
        self.link_at.swap(hi - 1, lo - 1);
        self.priority_of[a] = lo;
        self.priority_of[b] = hi;
    }

    /// Returns the permutation after an adjacent transposition, leaving
    /// `self` untouched.
    ///
    /// # Panics
    ///
    /// Panics if `t.lower()` exceeds `N`.
    #[must_use]
    pub fn with(&self, t: AdjacentTransposition) -> Permutation {
        let mut next = self.clone();
        next.apply(t);
        next
    }

    /// The symmetric difference `σ △ σ' = {n : σ_n ≠ σ'_n}` (Definition 9),
    /// as a sorted list of links.
    ///
    /// # Panics
    ///
    /// Panics if the permutations differ in length.
    #[must_use]
    pub fn symmetric_difference(&self, other: &Permutation) -> Vec<LinkId> {
        assert_eq!(self.len(), other.len(), "permutation lengths differ");
        self.priority_of
            .iter()
            .zip(&other.priority_of)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(n, _)| LinkId::new(n))
            .collect()
    }

    /// If `other` differs from `self` by exactly one adjacent transposition,
    /// returns it; otherwise `None`.
    ///
    /// # Panics
    ///
    /// Panics if the permutations differ in length.
    #[must_use]
    pub fn adjacent_transposition_to(&self, other: &Permutation) -> Option<AdjacentTransposition> {
        let diff = self.symmetric_difference(other);
        if diff.len() != 2 {
            return None;
        }
        let (a, b) = (diff[0], diff[1]);
        let (pa, pb) = (self.priority_of(a), self.priority_of(b));
        if pa.abs_diff(pb) != 1 {
            return None;
        }
        // The exchange must be exact: other holds the swapped priorities.
        if other.priority_of(a) == pb && other.priority_of(b) == pa {
            Some(AdjacentTransposition::new(pa.min(pb)))
        } else {
            None
        }
    }

    /// Number of inversions — the minimum number of adjacent transpositions
    /// between `self` and the identity. Useful for mixing-time diagnostics.
    #[must_use]
    pub fn inversions(&self) -> usize {
        let v = &self.link_at;
        let mut count = 0;
        for i in 0..v.len() {
            for j in (i + 1)..v.len() {
                if v[i] > v[j] {
                    count += 1;
                }
            }
        }
        count
    }

    /// The rank of this permutation in `0..N!` under the Lehmer code of its
    /// service order. [`Permutation::from_rank`] inverts it.
    ///
    /// # Panics
    ///
    /// Panics if `N > 20` (the factorial would overflow `u64`).
    #[must_use]
    pub fn rank(&self) -> u64 {
        let n = self.len();
        assert!(n <= 20, "rank only supported up to N = 20");
        let seq = &self.link_at;
        let mut rank: u64 = 0;
        for i in 0..n {
            let smaller_after = seq[i + 1..].iter().filter(|&&x| x < seq[i]).count() as u64;
            rank = rank * (n - i) as u64 + smaller_after;
        }
        rank
    }

    /// Reconstructs the permutation of size `n` with the given
    /// [`rank`](Permutation::rank).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `n > 20`, or `rank >= n!`.
    #[must_use]
    pub fn from_rank(n: usize, mut rank: u64) -> Permutation {
        assert!(
            (1..=20).contains(&n),
            "rank only supported for 1 <= N <= 20"
        );
        let mut digits = vec![0u64; n];
        for i in (0..n).rev() {
            let base = (n - i) as u64;
            digits[i] = rank % base;
            rank /= base;
        }
        assert_eq!(rank, 0, "rank out of range for this N");
        let mut available: Vec<usize> = (0..n).collect();
        let mut link_at = Vec::with_capacity(n);
        for &d in &digits {
            link_at.push(available.remove(d as usize));
        }
        let mut priority_of = vec![0usize; n];
        for (pos, &link) in link_at.iter().enumerate() {
            priority_of[link] = pos + 1;
        }
        Permutation {
            priority_of,
            link_at,
        }
    }

    /// Iterates over all `N!` permutations of size `n`, in rank order.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 12` (larger spaces are too big to
    /// enumerate; the Markov analyses cap well below this).
    pub fn all(n: usize) -> impl Iterator<Item = Permutation> {
        assert!(
            (1..=12).contains(&n),
            "exhaustive enumeration capped at N = 12"
        );
        let total = factorial(n);
        (0..total).map(move |r| Permutation::from_rank(n, r))
    }
}

/// `n!` as a `u64`.
///
/// # Panics
///
/// Panics if `n > 20`.
#[must_use]
pub(crate) fn factorial(n: usize) -> u64 {
    assert!(n <= 20, "factorial overflows u64 beyond 20");
    (1..=n as u64).product()
}

impl fmt::Debug for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Permutation{:?}", self.priority_of)
    }
}

impl fmt::Display for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, p) in self.priority_of.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_maps_link_to_index_plus_one() {
        let p = Permutation::identity(4);
        for n in 0..4 {
            assert_eq!(p.priority_of(LinkId::new(n)), n + 1);
            assert_eq!(p.link_with_priority(n + 1), LinkId::new(n));
        }
        assert_eq!(p.inversions(), 0);
    }

    #[test]
    fn from_priorities_validates_bijection() {
        assert!(Permutation::from_priorities(vec![1, 2, 3]).is_ok());
        assert!(Permutation::from_priorities(vec![1, 1, 3]).is_err());
        assert!(Permutation::from_priorities(vec![0, 1, 2]).is_err());
        assert!(Permutation::from_priorities(vec![1, 2, 4]).is_err());
        assert!(Permutation::from_priorities(vec![]).is_err());
    }

    #[test]
    fn from_order_inverts_service_order() {
        let order = [LinkId::new(2), LinkId::new(0), LinkId::new(1)];
        let p = Permutation::from_order(&order).unwrap();
        assert_eq!(p.priority_of(LinkId::new(2)), 1);
        assert_eq!(p.service_order(), order);
        assert!(Permutation::from_order(&[LinkId::new(0), LinkId::new(0)]).is_err());
    }

    #[test]
    fn paper_example_1_symmetric_difference() {
        // σ = [2,1,4,3], σ' = [2,4,1,3]: σ△σ' = {2,3} in the paper's
        // 1-based indexing = links 1 and 2 zero-based.
        let sigma = Permutation::from_priorities(vec![2, 1, 4, 3]).unwrap();
        let sigma_p = Permutation::from_priorities(vec![2, 4, 1, 3]).unwrap();
        assert_eq!(
            sigma.symmetric_difference(&sigma_p),
            vec![LinkId::new(1), LinkId::new(2)]
        );
        // The exchanged entries are σ_2 = 1 and σ_3 = 4, whose values differ
        // by 3, so under Definition 8 (|σ_i − σ_j| = 1) this particular pair
        // is NOT an adjacent transposition — the DP protocol only ever
        // exchanges *consecutive* priorities, which is what `apply` does.
        assert!(sigma.adjacent_transposition_to(&sigma_p).is_none());
    }

    #[test]
    fn apply_swaps_adjacent_priorities() {
        let mut p = Permutation::identity(4);
        p.apply(AdjacentTransposition::new(2));
        // Links 1 and 2 (zero-based) exchanged priorities 2 and 3.
        assert_eq!(p.priorities(), [1, 3, 2, 4]);
        assert_eq!(p.link_with_priority(2), LinkId::new(2));
        assert_eq!(p.link_with_priority(3), LinkId::new(1));
        // Applying the same transposition twice restores the identity.
        p.apply(AdjacentTransposition::new(2));
        assert_eq!(p, Permutation::identity(4));
    }

    #[test]
    fn adjacent_transposition_detected() {
        let p = Permutation::identity(5);
        let q = p.with(AdjacentTransposition::new(3));
        assert_eq!(
            p.adjacent_transposition_to(&q),
            Some(AdjacentTransposition::new(3))
        );
        assert_eq!(p.adjacent_transposition_to(&p), None);
        // Two disjoint swaps are not a single adjacent transposition.
        let r = q.with(AdjacentTransposition::new(1));
        assert_eq!(p.adjacent_transposition_to(&r), None);
    }

    #[test]
    fn rank_roundtrip_small() {
        for n in 1..=5 {
            let total = factorial(n);
            for r in 0..total {
                let p = Permutation::from_rank(n, r);
                assert_eq!(p.rank(), r, "rank roundtrip failed at n={n} r={r}");
            }
        }
    }

    #[test]
    fn all_enumerates_n_factorial_distinct() {
        let perms: Vec<Permutation> = Permutation::all(4).collect();
        assert_eq!(perms.len(), 24);
        let mut ranks: Vec<u64> = perms.iter().map(Permutation::rank).collect();
        ranks.dedup();
        assert_eq!(ranks.len(), 24);
    }

    #[test]
    fn inversions_counts_disorder() {
        // Full reversal of 4 elements has 4·3/2 = 6 inversions.
        let p = Permutation::from_priorities(vec![4, 3, 2, 1]).unwrap();
        assert_eq!(p.inversions(), 6);
    }

    #[test]
    fn display_shows_priority_vector() {
        let p = Permutation::from_priorities(vec![2, 1, 3]).unwrap();
        assert_eq!(p.to_string(), "[2,1,3]");
        assert!(format!("{p:?}").contains("Permutation"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn apply_out_of_range_panics() {
        Permutation::identity(3).apply(AdjacentTransposition::new(3));
    }

    #[test]
    fn disjoint_adjacent_swaps_commute() {
        // |upper_i − upper_j| ≥ 2 ⇒ the transpositions act on disjoint
        // priority pairs, so composition order is irrelevant — this is
        // what lets the DP engine commit an interval's swap set without
        // ordering concerns (candidates are non-adjacent by construction).
        let s1 = AdjacentTransposition::new(1);
        let s3 = AdjacentTransposition::new(3);
        for p in Permutation::all(5) {
            assert_eq!(p.with(s1).with(s3), p.with(s3).with(s1));
        }
        // Overlapping swaps do NOT commute (braid relation): s1·s2 ≠ s2·s1.
        let s2 = AdjacentTransposition::new(2);
        let id = Permutation::identity(3);
        assert_ne!(id.with(s1).with(s2), id.with(s2).with(s1));
    }

    #[test]
    fn inverse_round_trips() {
        for p in Permutation::all(4) {
            // service_order ∘ from_order is the identity on permutations.
            assert_eq!(Permutation::from_order(&p.service_order()).unwrap(), p);
            // priority_of and link_with_priority are mutually inverse.
            for q in 1..=4 {
                assert_eq!(p.priority_of(p.link_with_priority(q)), q);
            }
            for link in LinkId::all(4) {
                assert_eq!(p.link_with_priority(p.priority_of(link)), link);
            }
        }
    }

    proptest! {
        /// Round-trip: priorities -> Permutation -> priorities.
        #[test]
        fn prop_priorities_roundtrip(n in 1usize..8, seed in 0u64..1000) {
            use rand::seq::SliceRandom;
            use rand::SeedableRng;
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let mut v: Vec<usize> = (1..=n).collect();
            v.shuffle(&mut rng);
            let p = Permutation::from_priorities(v.clone()).unwrap();
            prop_assert_eq!(p.priorities(), &v[..]);
            prop_assert_eq!(Permutation::from_rank(n, p.rank()), p);
        }

        /// apply() preserves the bijection invariant and is an involution.
        #[test]
        fn prop_apply_involution(n in 2usize..8, upper in 1usize..7, seed in 0u64..1000) {
            prop_assume!(upper < n);
            use rand::seq::SliceRandom;
            use rand::SeedableRng;
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let mut v: Vec<usize> = (1..=n).collect();
            v.shuffle(&mut rng);
            let p = Permutation::from_priorities(v).unwrap();
            let t = AdjacentTransposition::new(upper);
            let q = p.with(t);
            // Still a valid bijection:
            prop_assert!(Permutation::from_priorities(q.priorities().to_vec()).is_ok());
            // Involution:
            prop_assert_eq!(q.with(t), p.clone());
            // Exactly the two swapped links differ:
            prop_assert_eq!(p.symmetric_difference(&q).len(), 2);
            prop_assert_eq!(p.adjacent_transposition_to(&q), Some(t));
        }

        /// Arbitrary adjacent-swap sequences keep σ a bijection at every
        /// step, and replaying the sequence in reverse undoes it (each
        /// transposition is its own inverse).
        #[test]
        fn prop_swap_sequences_preserve_bijectivity(
            n in 2usize..8,
            uppers in proptest::collection::vec(1usize..7, 0..20),
        ) {
            let start = Permutation::identity(n);
            let mut p = start.clone();
            let applied: Vec<AdjacentTransposition> = uppers
                .iter()
                .filter(|&&u| u < n)
                .map(|&u| AdjacentTransposition::new(u))
                .collect();
            for &t in &applied {
                p.apply(t);
                prop_assert!(
                    Permutation::from_priorities(p.priorities().to_vec()).is_ok(),
                    "σ stopped being a bijection mid-sequence: {}",
                    p
                );
            }
            for &t in applied.iter().rev() {
                p.apply(t);
            }
            prop_assert_eq!(p, start);
        }
    }
}
