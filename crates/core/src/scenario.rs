//! The declarative scenario layer: one description of an experiment that
//! every consumer (bench figures, CLI, examples, integration tests) builds
//! its networks from.
//!
//! A [`Scenario`] is plain data — topology size, timing, channel success
//! probabilities, traffic process, delivery-ratio requirements, a
//! [`PolicySpec`], the horizon, the base seed, and a replication count. It
//! is `Clone + PartialEq`, so sweeps and registries can manipulate
//! configurations without touching any stateful simulator object; the
//! stateful [`Network`] (and its boxed policy) is instantiated exactly once
//! per run by [`Scenario::network`].
//!
//! The registry at the bottom names the paper's workloads (`video20` and
//! `control10` via [`video`] and [`control`], plus [`asym`] and [`tiny`])
//! and the robustness workloads ([`bursty`], [`hidden_terminal`],
//! [`poisson_churn`], [`overload_admission`]),
//! and defines each figure's sweep as a
//! base `Scenario` plus an [`Axis`] ([`fig3`].. [`fig10`]), so the bench
//! harness, the CLI's `--scenario` flag, and the docs all speak the same
//! vocabulary.
//!
//! # Example
//!
//! ```
//! use rtmac::scenario::{self, PolicySpec};
//!
//! let sc = scenario::by_name("video20").unwrap().with_intervals(200);
//! let report = sc.run()?;
//! assert_eq!(report.intervals, 200);
//!
//! // Same configuration, different contender — still one line.
//! let ldf = sc.with_policy(PolicySpec::Ldf).run()?;
//! assert_eq!(ldf.policy, "LDF");
//! # Ok::<(), rtmac_model::ConfigError>(())
//! ```

use rtmac_model::influence::{DebtInfluence, Linear, Log1p, PaperLog, Power};
use rtmac_model::{ConfigError, LinkId, Permutation};
use rtmac_sim::Nanos;
use rtmac_traffic::{ArrivalProcess, BernoulliArrivals, BurstUniform, ConstantArrivals};

use crate::{Network, NetworkBuilder, PolicyKind, RunReport};

/// A per-link parameter: one value shared by every link, or an explicit
/// per-link vector (the asymmetric networks of Figs. 7–8).
#[derive(Debug, Clone, PartialEq)]
pub enum Param {
    /// Every link uses the same value.
    Uniform(f64),
    /// One value per link.
    PerLink(Vec<f64>),
}

impl Param {
    /// Expands to one value per link.
    #[must_use]
    pub fn expand(&self, n_links: usize) -> Vec<f64> {
        match self {
            Param::Uniform(v) => vec![*v; n_links],
            Param::PerLink(v) => v.clone(),
        }
    }

    /// The shared value, if this parameter is uniform.
    #[must_use]
    pub fn uniform_value(&self) -> Option<f64> {
        match self {
            Param::Uniform(v) => Some(*v),
            Param::PerLink(_) => None,
        }
    }
}

/// Declarative arrival-process selection.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficSpec {
    /// The paper's video model: `U{1..=burst_max}` packets with
    /// probability `α_n`, else none.
    Burst {
        /// Per-link burst probabilities `α_n`.
        alpha: Param,
        /// Maximum burst size (paper: 6).
        burst_max: u32,
    },
    /// The paper's control model: one packet with probability `λ_n`.
    Bernoulli {
        /// Per-link arrival probabilities `λ_n`.
        lambda: Param,
    },
    /// Exactly one packet per link per interval.
    Constant,
}

impl TrafficSpec {
    /// Instantiates the arrival process for `n_links` links. Invalid
    /// parameters yield `None`, which [`NetworkBuilder::build`] reports as
    /// a missing/invalid arrival process.
    fn instantiate(&self, n_links: usize) -> Option<Box<dyn ArrivalProcess>> {
        match self {
            TrafficSpec::Burst { alpha, burst_max } => {
                BurstUniform::new(alpha.expand(n_links), *burst_max)
                    .ok()
                    .map(|t| Box::new(t) as Box<dyn ArrivalProcess>)
            }
            TrafficSpec::Bernoulli { lambda } => BernoulliArrivals::new(lambda.expand(n_links))
                .ok()
                .map(|t| Box::new(t) as Box<dyn ArrivalProcess>),
            TrafficSpec::Constant => ConstantArrivals::one_each(n_links)
                .ok()
                .map(|t| Box::new(t) as Box<dyn ArrivalProcess>),
        }
    }
}

/// Declarative debt-influence-function selection (`f` in the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InfluenceSpec {
    /// The paper's `f(x) = log(max{1, 100(x+1)})`.
    PaperLog,
    /// The paper's log with a custom scale `c`: `log(max{1, c(x+1)})`.
    PaperLogScaled(f64),
    /// `f(x) = x` (classic LDF weighting).
    Linear,
    /// `f(x) = log(1+x)`.
    Log1p,
    /// `f(x) = x^m`.
    Power(f64),
}

impl InfluenceSpec {
    /// Instantiates the influence function.
    #[must_use]
    pub fn boxed(self) -> Box<dyn DebtInfluence> {
        match self {
            InfluenceSpec::PaperLog => Box::new(PaperLog::default()),
            InfluenceSpec::PaperLogScaled(c) => Box::new(PaperLog::with_scale(c)),
            InfluenceSpec::Linear => Box::new(Linear),
            InfluenceSpec::Log1p => Box::new(Log1p),
            InfluenceSpec::Power(m) => Box::new(Power::new(m)),
        }
    }
}

/// Declarative, `Copy`-able policy selection.
///
/// Unlike [`PolicyKind`] — which owns a boxed influence function and a
/// stateful engine configuration — a `PolicySpec` is pure data, so sweep
/// loops can carry it by value and instantiate the actual policy exactly
/// once per run (inside [`Scenario::network`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicySpec {
    /// The paper's decentralized algorithm (Algorithm 2 + Eq. 14).
    DbDp {
        /// Debt influence function `f`.
        influence: InfluenceSpec,
        /// The constant `R` of Eq. 14.
        r: f64,
        /// Simultaneous swap pairs per interval (Remark 6).
        swap_pairs: usize,
    },
    /// Centralized extended largest-debt-first (Algorithm 1).
    Eldf {
        /// Debt influence function `f`.
        influence: InfluenceSpec,
    },
    /// Classic LDF — ELDF with `f(x) = x`.
    Ldf,
    /// The discretized FCSMA baseline with the paper-default quantizer.
    Fcsma,
    /// IEEE 802.11 DCF with 802.11a defaults.
    Dcf,
    /// Frame-based CSMA.
    FrameCsma {
        /// Debt influence for the per-frame slot allocation.
        influence: InfluenceSpec,
        /// Control-phase length in backoff slots.
        control_slots: u32,
    },
    /// The DP protocol frozen at the identity priority ordering (Fig. 6).
    FixedPriority,
}

impl PolicySpec {
    /// DB-DP with the paper's simulation parameters.
    #[must_use]
    pub fn db_dp() -> Self {
        PolicySpec::DbDp {
            influence: InfluenceSpec::PaperLog,
            r: 10.0,
            swap_pairs: 1,
        }
    }

    /// DB-DP with `pairs` simultaneous swap pairs (Remark 6).
    #[must_use]
    pub fn db_dp_pairs(pairs: usize) -> Self {
        PolicySpec::DbDp {
            influence: InfluenceSpec::PaperLog,
            r: 10.0,
            swap_pairs: pairs,
        }
    }

    /// ELDF with the paper's influence function.
    #[must_use]
    pub fn eldf() -> Self {
        PolicySpec::Eldf {
            influence: InfluenceSpec::PaperLog,
        }
    }

    /// Frame-based CSMA with linear debt weights and a 32-slot control
    /// phase.
    #[must_use]
    pub fn frame_csma() -> Self {
        PolicySpec::FrameCsma {
            influence: InfluenceSpec::Linear,
            control_slots: 32,
        }
    }

    /// Display label (the paper's plotting names).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            PolicySpec::DbDp { swap_pairs: 1, .. } => "DB-DP".to_string(),
            PolicySpec::DbDp { swap_pairs, .. } => format!("DB-DP {swap_pairs} pairs"),
            PolicySpec::Eldf { .. } => "ELDF".to_string(),
            PolicySpec::Ldf => "LDF".to_string(),
            PolicySpec::Fcsma => "FCSMA".to_string(),
            PolicySpec::Dcf => "DCF".to_string(),
            PolicySpec::FrameCsma { .. } => "Frame-CSMA".to_string(),
            PolicySpec::FixedPriority => "DP(fixed σ)".to_string(),
        }
    }

    /// Instantiates the stateful [`PolicyKind`] for an `n_links` network.
    /// Called exactly once per run, from [`Scenario::to_builder`].
    #[must_use]
    pub fn kind(&self, n_links: usize) -> PolicyKind {
        match *self {
            PolicySpec::DbDp {
                influence,
                r,
                swap_pairs,
            } => PolicyKind::db_dp_with(influence.boxed(), r, swap_pairs),
            PolicySpec::Eldf { influence } => PolicyKind::eldf_with(influence.boxed()),
            PolicySpec::Ldf => PolicyKind::Ldf,
            PolicySpec::Fcsma => PolicyKind::fcsma(),
            PolicySpec::Dcf => PolicyKind::dcf(),
            PolicySpec::FrameCsma {
                influence,
                control_slots,
            } => PolicyKind::frame_csma_with(influence.boxed(), control_slots),
            PolicySpec::FixedPriority => PolicyKind::FixedPriority {
                sigma: Permutation::identity(n_links),
            },
        }
    }
}

/// Which DP interval kernel executes a run.
///
/// The two engines are bit-for-bit equivalent (pinned by the
/// `batched_equivalence` test suite); the choice only trades
/// per-interval complexity. Only the DB-DP policy consults this —
/// [`crate::NetworkBuilder::build`] rejects `Batched` for every other
/// policy and for fault-injection runs, both of which have no batched
/// implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineSpec {
    /// The reference timeline engine: replays every slot boundary,
    /// `O(deadline/slot · N)` per interval.
    #[default]
    Timeline,
    /// The massive-N interval kernel: walks links in counter order over
    /// flat struct-of-arrays state, `O(min(N, deadline/slot))` boundaries
    /// per interval and zero heap allocations while stepping.
    Batched,
}

impl EngineSpec {
    /// The `--engine` spelling.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EngineSpec::Timeline => "timeline",
            EngineSpec::Batched => "batched",
        }
    }
}

/// Declarative link-churn selection: one crash/revive event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnSpec {
    /// The crashing link.
    pub link: usize,
    /// The interval at which it goes down.
    pub crash_at: u64,
    /// How many intervals it stays down before reviving with stale
    /// priority state.
    pub down_intervals: u64,
}

/// Declarative Gilbert–Elliott bursty-sensing parameters (the mirror of
/// [`rtmac_phy::fault::BurstSensing`]): per-link good/bad chains advanced
/// once per interval, with elevated sensing-error rates in the bad state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstSpec {
    /// Per-interval probability a link's chain enters the bad state.
    pub p_enter_bad: f64,
    /// Per-interval probability it leaves the bad state (mean burst length
    /// is its reciprocal).
    pub p_exit_bad: f64,
    /// False-busy rate while the chain sits in the bad state.
    pub bad_false_busy: f64,
    /// False-idle rate while the chain sits in the bad state.
    pub bad_false_idle: f64,
}

/// Declarative Poisson crash/revive churn (the mirror of
/// [`rtmac_phy::fault::ChurnProcess::with_poisson`]): every up link crashes
/// with a per-interval probability; outages are exponential in length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonChurnSpec {
    /// Per-interval crash probability for each up link, in `[0, 1)`.
    pub crash_rate: f64,
    /// Mean outage length in intervals (at least 1).
    pub mean_down: f64,
}

/// Declarative flash-crowd ramp (the mirror of
/// [`rtmac_phy::fault::ChurnProcess::with_flash_crowd`]): a block of links
/// dark from interval 0 that all join at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashCrowdSpec {
    /// First link of the joining block.
    pub first_link: usize,
    /// Number of links in the block.
    pub count: usize,
    /// The interval at which the whole block comes up.
    pub join_at: u64,
}

/// Declarative adaptive R2 recovery (the mirror of
/// [`rtmac_mac::RecoveryConfig::with_adaptive_miss_limit`]): the per-link
/// miss limit starts at `max(base, ⌈log₂(N+1)⌉)`, doubles (capped at
/// `cap`) each time the fallback fires, and halves back toward the initial
/// value whenever the adjacent claim is heard again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveRecoverySpec {
    /// Floor of the miss limit.
    pub base: u32,
    /// Ceiling of the exponential backoff.
    pub cap: u32,
}

/// Declarative fault injection for the degraded-mode DP experiments:
/// carrier-sensing error rates (optionally modulated by a Gilbert–Elliott
/// burst process), asymmetric hidden-terminal pairs, link churn (one
/// scripted event, a flash-crowd ramp, and/or a Poisson crash/revive
/// process), and the recovery rule's miss-limit policy. Only meaningful
/// for [`PolicySpec::DbDp`]; [`NetworkBuilder::build`] rejects other
/// policies.
///
/// With zero error rates, no burst process, no hidden pairs, and no churn
/// the degraded-mode engine is still selected, but it replays the pristine
/// engine's randomness draw-for-draw, so results are byte-identical to a
/// fault-free run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Probability an idle carrier-sense instant reads busy.
    pub false_busy: f64,
    /// Probability a busy carrier-sense instant reads idle.
    pub false_idle: f64,
    /// Optional Gilbert–Elliott bursty-sensing overlay.
    pub burst: Option<BurstSpec>,
    /// Asymmetric hidden-terminal `(listener, transmitter)` pairs: each
    /// listed listener is deaf to the listed transmitter.
    pub hidden: Vec<(usize, usize)>,
    /// Optional scripted crash/revive event.
    pub churn: Option<ChurnSpec>,
    /// Optional Poisson crash/revive process (seeded on its own RNG lane).
    pub poisson: Option<PoissonChurnSpec>,
    /// Optional flash-crowd join ramp.
    pub flash_crowd: Option<FlashCrowdSpec>,
    /// Consecutive unheard-adjacent-claim intervals tolerated before the
    /// R2 fallback fires (the fixed policy; superseded by `adaptive`).
    pub miss_limit: u32,
    /// Optional adaptive R2 miss-limit policy; overrides `miss_limit`.
    pub adaptive: Option<AdaptiveRecoverySpec>,
}

impl FaultSpec {
    /// Symmetric sensing errors at rate `eps`, no churn, default recovery.
    #[must_use]
    pub fn sensing(eps: f64) -> Self {
        FaultSpec {
            false_busy: eps,
            false_idle: eps,
            burst: None,
            hidden: Vec::new(),
            churn: None,
            poisson: None,
            flash_crowd: None,
            miss_limit: 3,
            adaptive: None,
        }
    }

    /// Adds a crash/revive event.
    #[must_use]
    pub fn with_churn(mut self, link: usize, crash_at: u64, down_intervals: u64) -> Self {
        self.churn = Some(ChurnSpec {
            link,
            crash_at,
            down_intervals,
        });
        self
    }

    /// Overrides the R2 miss limit.
    #[must_use]
    pub fn with_miss_limit(mut self, miss_limit: u32) -> Self {
        self.miss_limit = miss_limit;
        self
    }

    /// Layers a Gilbert–Elliott burst process over the base sensing rates.
    #[must_use]
    pub fn with_burst(
        mut self,
        p_enter_bad: f64,
        p_exit_bad: f64,
        bad_false_busy: f64,
        bad_false_idle: f64,
    ) -> Self {
        self.burst = Some(BurstSpec {
            p_enter_bad,
            p_exit_bad,
            bad_false_busy,
            bad_false_idle,
        });
        self
    }

    /// Makes `listener` deaf to `transmitter` (asymmetric: add the mirrored
    /// pair explicitly for a symmetric hidden-terminal geometry).
    #[must_use]
    pub fn with_hidden_pair(mut self, listener: usize, transmitter: usize) -> Self {
        self.hidden.push((listener, transmitter));
        self
    }

    /// Adds a seeded Poisson crash/revive process.
    #[must_use]
    pub fn with_poisson_churn(mut self, crash_rate: f64, mean_down: f64) -> Self {
        self.poisson = Some(PoissonChurnSpec {
            crash_rate,
            mean_down,
        });
        self
    }

    /// Adds a flash-crowd ramp: links `first_link .. first_link + count`
    /// dark from interval 0, all joining at `join_at`.
    #[must_use]
    pub fn with_flash_crowd(mut self, first_link: usize, count: usize, join_at: u64) -> Self {
        self.flash_crowd = Some(FlashCrowdSpec {
            first_link,
            count,
            join_at,
        });
        self
    }

    /// Switches R2 to the adaptive exponential-backoff miss limit.
    #[must_use]
    pub fn with_adaptive_recovery(mut self, base: u32, cap: u32) -> Self {
        self.adaptive = Some(AdaptiveRecoverySpec { base, cap });
        self
    }
}

/// Declarative feasibility-aware admission control: at every churn event
/// the network's gate re-evaluates the Lemma-2 utilization
/// `Σ_admitted q_n/p_n / budget` and admits an arriving link only while
/// the admitted set (candidate included) stays at or under `threshold`;
/// with `shed` set, an overloaded admitted set is trimmed lowest-debt-first
/// until the survivors fit. Requires fault injection (the degraded DB-DP
/// path is the only engine with a churn/blocking substrate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionSpec {
    /// Utilization threshold the admitted set must stay at or under
    /// (1.0 = the Lemma-2 necessary feasibility bound itself).
    pub threshold: f64,
    /// Whether to shed lowest-debt-first when the admitted set exceeds the
    /// threshold anyway.
    pub shed: bool,
}

impl AdmissionSpec {
    /// Admission at the given utilization threshold, with shedding on.
    #[must_use]
    pub fn new(threshold: f64) -> Self {
        AdmissionSpec {
            threshold,
            shed: true,
        }
    }

    /// Disables load shedding (the gate only filters arrivals).
    #[must_use]
    pub fn without_shedding(mut self) -> Self {
        self.shed = false;
        self
    }
}

/// One fully-specified experiment configuration: everything a run needs,
/// as plain comparable data.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Registry name (`"custom"` for ad-hoc configurations).
    pub name: &'static str,
    /// Number of fully-interfering links `N`.
    pub links: usize,
    /// Per-packet deadline (interval length `T`) in microseconds.
    pub deadline_us: u64,
    /// Data payload size in bytes.
    pub payload_bytes: u32,
    /// Per-link channel success probabilities `p_n`.
    pub success: Param,
    /// Arrival process.
    pub traffic: TrafficSpec,
    /// Required delivery ratios `ρ_n` (so `q_n = ρ_n · λ_n`).
    pub ratio: Param,
    /// Transmission policy.
    pub policy: PolicySpec,
    /// Horizon: intervals simulated by [`Scenario::run`].
    pub intervals: usize,
    /// Base RNG seed; replication `i` derives its seed from it.
    pub seed: u64,
    /// Number of independent sample paths the
    /// [`Runner`](crate::runner::Runner) fans this scenario out across.
    pub replications: usize,
    /// Track one link's running throughput: `(link index, band)` as in
    /// [`NetworkBuilder::track_link`] (the Fig. 5 instrumentation).
    pub track: Option<(usize, f64)>,
    /// Fault injection (sensing errors + churn) for the degraded-mode DP
    /// experiments; `None` runs every policy on its fault-free path.
    pub fault: Option<FaultSpec>,
    /// Feasibility-aware admission control over churn events; `None` leaves
    /// every link admitted unconditionally.
    pub admission: Option<AdmissionSpec>,
    /// Which DP interval kernel executes the run (DB-DP only; the two
    /// engines produce bit-identical results).
    pub engine: EngineSpec,
}

impl Scenario {
    /// Replaces the policy.
    #[must_use]
    pub fn with_policy(mut self, policy: PolicySpec) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the horizon.
    #[must_use]
    pub fn with_intervals(mut self, intervals: usize) -> Self {
        self.intervals = intervals;
        self
    }

    /// Replaces the base seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the link count — the knob the `rtmac-net` emulation
    /// harness turns to scale a registry scenario to hundreds of links.
    /// [`Param::Uniform`] parameters scale automatically; explicit
    /// [`Param::PerLink`] vectors, tracked links, and fault specs that
    /// name links are left untouched, so a size mismatch surfaces as a
    /// [`ConfigError`] from [`Scenario::network`] instead of silently
    /// re-interpreting the experiment.
    #[must_use]
    pub fn with_links(mut self, links: usize) -> Self {
        self.links = links;
        self
    }

    /// Replaces the replication count.
    #[must_use]
    pub fn with_replications(mut self, replications: usize) -> Self {
        self.replications = replications;
        self
    }

    /// Tracks `link`'s running throughput within `band` of its requirement.
    #[must_use]
    pub fn with_track(mut self, link: usize, band: f64) -> Self {
        self.track = Some((link, band));
        self
    }

    /// Replaces the delivery-ratio requirement.
    #[must_use]
    pub fn with_ratio(mut self, ratio: Param) -> Self {
        self.ratio = ratio;
        self
    }

    /// Injects faults (sensing errors and/or churn) into the run.
    #[must_use]
    pub fn with_fault(mut self, fault: FaultSpec) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Enables feasibility-aware admission control (requires a fault spec).
    #[must_use]
    pub fn with_admission(mut self, admission: AdmissionSpec) -> Self {
        self.admission = Some(admission);
        self
    }

    /// Selects the DP interval kernel (default [`EngineSpec::Timeline`]).
    #[must_use]
    pub fn with_engine(mut self, engine: EngineSpec) -> Self {
        self.engine = engine;
        self
    }

    /// A preconfigured [`NetworkBuilder`] — the escape hatch for consumers
    /// that need knobs the declarative form does not carry (custom loss
    /// models, per-link payloads); chain the extra builder calls before
    /// `build()`. Validation happens in [`NetworkBuilder::build`].
    #[must_use]
    pub fn to_builder(&self) -> NetworkBuilder {
        let mut b = Network::builder()
            .links(self.links)
            .deadline(Nanos::from_micros(self.deadline_us))
            .payload_bytes(self.payload_bytes)
            .success_probabilities(self.success.expand(self.links))
            .delivery_ratios(self.ratio.expand(self.links))
            .policy(self.policy.kind(self.links))
            .engine(self.engine)
            .seed(self.seed);
        if let Some(traffic) = self.traffic.instantiate(self.links) {
            b = b.traffic(traffic);
        }
        if let Some((link, band)) = self.track {
            b = b.track_link(LinkId::new(link), band);
        }
        if let Some(fault) = &self.fault {
            b = b.fault(fault.clone());
        }
        if let Some(admission) = self.admission {
            b = b.admission(admission);
        }
        b
    }

    /// Builds the network with the scenario's base seed.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for inconsistent parameters.
    pub fn network(&self) -> Result<Network, ConfigError> {
        self.to_builder().build()
    }

    /// Builds the network with an overridden seed (replication fan-out).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for inconsistent parameters.
    pub fn network_with_seed(&self, seed: u64) -> Result<Network, ConfigError> {
        self.to_builder().seed(seed).build()
    }

    /// Builds the network and runs the scenario's horizon.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for inconsistent parameters.
    ///
    /// # Panics
    ///
    /// Propagates policy-engine panics, as in [`Network::step`].
    pub fn run(&self) -> Result<RunReport, ConfigError> {
        Ok(self.network()?.run(self.intervals))
    }
}

/// The parameter a [`Sweep`] varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Burst probability `α*` (requires [`TrafficSpec::Burst`]).
    Alpha,
    /// Bernoulli arrival rate `λ*` (requires [`TrafficSpec::Bernoulli`]).
    Lambda,
    /// Required delivery ratio `ρ`.
    Ratio,
    /// Channel success probability `p`.
    SuccessProbability,
}

impl Axis {
    /// The axis label used in tables and CSV headers.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Axis::Alpha => "alpha*",
            Axis::Lambda => "lambda*",
            Axis::Ratio => "rho",
            Axis::SuccessProbability => "p",
        }
    }
}

/// A one-dimensional experiment sweep: a base [`Scenario`], the [`Axis`] to
/// vary, and the points to visit. An optional per-link `shape` turns the
/// swept scalar into an asymmetric vector (Figs. 7–8: `α_n = shape_n · α*`).
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// Registry name.
    pub name: &'static str,
    /// Base configuration; every point is a copy with one parameter
    /// replaced.
    pub base: Scenario,
    /// The varied parameter.
    pub axis: Axis,
    /// The x-axis values.
    pub points: Vec<f64>,
    /// Optional per-link multipliers applied to the swept value; `None`
    /// sweeps uniformly.
    pub shape: Option<Vec<f64>>,
}

impl Sweep {
    /// The scenario at sweep position `x`.
    ///
    /// # Panics
    ///
    /// Panics if the axis does not match the base scenario's traffic kind
    /// (e.g. [`Axis::Alpha`] over Bernoulli traffic) — sweeps come from the
    /// registry, so this indicates a construction bug.
    #[must_use]
    pub fn at(&self, x: f64) -> Scenario {
        let param = match &self.shape {
            None => Param::Uniform(x),
            Some(shape) => Param::PerLink(shape.iter().map(|w| w * x).collect()),
        };
        let mut sc = self.base.clone();
        match self.axis {
            Axis::Alpha => match &mut sc.traffic {
                TrafficSpec::Burst { alpha, .. } => *alpha = param,
                // lint: allow(panic-macro) — documented `# Panics` contract:
                // sweeps come from the registry, so an axis/traffic mismatch
                // is a construction bug worth failing loudly on, not a
                // runtime condition to propagate.
                other => panic!("alpha sweep over non-burst traffic {other:?}"),
            },
            Axis::Lambda => match &mut sc.traffic {
                TrafficSpec::Bernoulli { lambda } => *lambda = param,
                // lint: allow(panic-macro) — same `# Panics` contract as the
                // alpha arm above.
                other => panic!("lambda sweep over non-Bernoulli traffic {other:?}"),
            },
            Axis::Ratio => sc.ratio = param,
            Axis::SuccessProbability => sc.success = param,
        }
        sc
    }

    /// All sweep points as scenarios, in order.
    ///
    /// # Panics
    ///
    /// Panics if the sweep axis mismatches the base scenario's traffic
    /// kind, as in [`Sweep::at`].
    #[must_use]
    pub fn scenarios(&self) -> Vec<Scenario> {
        self.points.iter().map(|&x| self.at(x)).collect()
    }

    /// Replaces the policy of the base scenario.
    #[must_use]
    pub fn with_policy(mut self, policy: PolicySpec) -> Self {
        self.base.policy = policy;
        self
    }
}

// ---------------------------------------------------------------------------
// Registry: the paper's named workloads and figure sweeps.
// ---------------------------------------------------------------------------

/// Default horizon used by the named workloads (the CLI default; the bench
/// figures override it with the paper's 5000/20000).
const DEFAULT_INTERVALS: usize = 1000;

/// The symmetric video workload (Figs. 3–6): 20 ms deadline, 1500 B
/// payloads, `p = 0.7`, burst-uniform arrivals `U{1..6}` with probability
/// `alpha`, delivery ratio `rho`.
#[must_use]
pub fn video(n: usize, alpha: f64, rho: f64, seed: u64) -> Scenario {
    Scenario {
        name: "video",
        links: n,
        deadline_us: 20_000,
        payload_bytes: 1500,
        success: Param::Uniform(0.7),
        traffic: TrafficSpec::Burst {
            alpha: Param::Uniform(alpha),
            burst_max: 6,
        },
        ratio: Param::Uniform(rho),
        policy: PolicySpec::db_dp(),
        intervals: DEFAULT_INTERVALS,
        seed,
        replications: 1,
        track: None,
        fault: None,
        admission: None,
        engine: EngineSpec::Timeline,
    }
}

/// The video workload with explicit per-link parameter vectors (the bench
/// figure runner's fully general form).
#[must_use]
pub fn video_per_link(alpha: Vec<f64>, p: Vec<f64>, rho: Vec<f64>, seed: u64) -> Scenario {
    let links = alpha.len();
    Scenario {
        name: "video",
        links,
        deadline_us: 20_000,
        payload_bytes: 1500,
        success: Param::PerLink(p),
        traffic: TrafficSpec::Burst {
            alpha: Param::PerLink(alpha),
            burst_max: 6,
        },
        ratio: Param::PerLink(rho),
        policy: PolicySpec::db_dp(),
        intervals: DEFAULT_INTERVALS,
        seed,
        replications: 1,
        track: None,
        fault: None,
        admission: None,
        engine: EngineSpec::Timeline,
    }
}

/// The ultra-low-latency control workload (Figs. 9–10): 2 ms deadline,
/// 100 B payloads, `p = 0.7`, Bernoulli arrivals with rate `lambda`,
/// delivery ratio `rho`.
#[must_use]
pub fn control(n: usize, lambda: f64, rho: f64, seed: u64) -> Scenario {
    Scenario {
        name: "control",
        links: n,
        deadline_us: 2_000,
        payload_bytes: 100,
        success: Param::Uniform(0.7),
        traffic: TrafficSpec::Bernoulli {
            lambda: Param::Uniform(lambda),
        },
        ratio: Param::Uniform(rho),
        policy: PolicySpec::db_dp(),
        intervals: DEFAULT_INTERVALS,
        seed,
        replications: 1,
        track: None,
        fault: None,
        admission: None,
        engine: EngineSpec::Timeline,
    }
}

/// The asymmetric video network of Figs. 7–8: links `0..n/2` form group 1
/// (`p = 0.5`, `α = 0.5·α*`), links `n/2..n` group 2 (`p = 0.8`,
/// `α = α*`).
#[must_use]
pub fn asym(alpha_star: f64, rho: f64, seed: u64) -> Scenario {
    let (alpha, p) = asym_params(alpha_star);
    Scenario {
        name: "asym",
        links: 20,
        deadline_us: 20_000,
        payload_bytes: 1500,
        success: Param::PerLink(p),
        traffic: TrafficSpec::Burst {
            alpha: Param::PerLink(alpha),
            burst_max: 6,
        },
        ratio: Param::Uniform(rho),
        policy: PolicySpec::db_dp(),
        intervals: DEFAULT_INTERVALS,
        seed,
        replications: 1,
        track: None,
        fault: None,
        admission: None,
        engine: EngineSpec::Timeline,
    }
}

/// The asymmetric `(α, p)` vectors at a given `α*`.
#[must_use]
pub fn asym_params(alpha_star: f64) -> (Vec<f64>, Vec<f64>) {
    let mut alpha = vec![0.5 * alpha_star; 10];
    alpha.extend(vec![alpha_star; 10]);
    let mut p = vec![0.5; 10];
    p.extend(vec![0.8; 10]);
    (alpha, p)
}

/// The per-link multipliers of the asymmetric α-sweep (Fig. 7).
fn asym_alpha_shape() -> Vec<f64> {
    let mut shape = vec![0.5; 10];
    shape.extend(vec![1.0; 10]);
    shape
}

/// A tiny, fast workload for smoke tests: 3 reliable links, one packet per
/// interval, 2 ms deadline.
#[must_use]
pub fn tiny(seed: u64) -> Scenario {
    Scenario {
        name: "tiny",
        links: 3,
        deadline_us: 2_000,
        payload_bytes: 100,
        success: Param::Uniform(1.0),
        traffic: TrafficSpec::Constant,
        ratio: Param::Uniform(0.95),
        policy: PolicySpec::db_dp(),
        intervals: DEFAULT_INTERVALS,
        seed,
        replications: 1,
        track: None,
        fault: None,
        admission: None,
        engine: EngineSpec::Timeline,
    }
}

/// The bursty-sensing robustness workload: the control network under a
/// high-burstiness Gilbert–Elliott sensing process (mean bad burst 16
/// intervals, 25% error rates while bad) with adaptive R2 recovery.
#[must_use]
pub fn bursty(seed: u64) -> Scenario {
    let sc = control(8, 0.7, 0.95, seed);
    Scenario {
        name: "bursty",
        fault: Some(
            FaultSpec::sensing(0.005)
                .with_burst(1.0 / 48.0, 1.0 / 16.0, 0.25, 0.25)
                .with_adaptive_recovery(2, 32),
        ),
        ..sc
    }
}

/// The hidden-terminal robustness workload: exact sensing everywhere
/// except an asymmetric deafness geometry — links 0 and 7 are mutually
/// hidden, and link 3 cannot hear link 4 (but 4 hears 3).
#[must_use]
pub fn hidden_terminal(seed: u64) -> Scenario {
    let sc = control(8, 0.7, 0.95, seed);
    Scenario {
        name: "hidden-terminal",
        fault: Some(
            FaultSpec::sensing(0.0)
                .with_hidden_pair(0, 7)
                .with_hidden_pair(7, 0)
                .with_hidden_pair(3, 4),
        ),
        ..sc
    }
}

/// The Poisson-churn robustness workload: the control network where every
/// up link crashes with probability 0.002 per interval (mean outage 25
/// intervals), plus light sensing noise, under adaptive R2 recovery.
#[must_use]
pub fn poisson_churn(seed: u64) -> Scenario {
    let sc = control(10, 0.7, 0.99, seed);
    Scenario {
        name: "poisson-churn",
        fault: Some(
            FaultSpec::sensing(0.01)
                .with_poisson_churn(0.002, 25.0)
                .with_adaptive_recovery(2, 32),
        ),
        ..sc
    }
}

/// The overload-admission workload: 12 links run a lightened control
/// workload (`λ = 0.6`, 95% delivery) from interval 0, and a flash crowd
/// of 12 more joins at interval 100. The full set is Lemma-2 infeasible
/// (utilization ≈ 1.22 of a 16-transmission budget), so the admission gate
/// accepts only the joiners that keep the set under its 0.75 threshold and
/// rejects the rest. The threshold deliberately sits below the Lemma-2
/// bound of 1: the bound is only necessary, and headroom for protocol
/// overhead is what keeps the admitted set's debts actually bounded.
#[must_use]
pub fn overload_admission(seed: u64) -> Scenario {
    let sc = control(24, 0.6, 0.95, seed);
    Scenario {
        name: "overload-admission",
        fault: Some(FaultSpec::sensing(0.0).with_flash_crowd(12, 12, 100)),
        admission: Some(AdmissionSpec::new(0.75)),
        ..sc
    }
}

/// Names accepted by [`by_name`] (and the CLI's `--scenario` flag).
pub const NAMES: [&str; 8] = [
    "video20",
    "control10",
    "asym",
    "tiny",
    "bursty",
    "hidden-terminal",
    "poisson-churn",
    "overload-admission",
];

/// Looks up a named workload: `video20` (Fig. 3's network at `α* = 0.55`),
/// `control10` (Fig. 9's network at `λ* = 0.7`), `asym` (Figs. 7–8 at
/// `α* = 0.7`), `tiny`, or one of the robustness workloads (`bursty`,
/// `hidden-terminal`, `poisson-churn`, `overload-admission`).
#[must_use]
pub fn by_name(name: &str) -> Option<Scenario> {
    match name {
        "video20" => Some(Scenario {
            name: "video20",
            ..video(20, 0.55, 0.9, 0)
        }),
        "control10" => Some(Scenario {
            name: "control10",
            ..control(10, 0.7, 0.99, 0)
        }),
        "asym" => Some(asym(0.7, 0.9, 0)),
        "tiny" => Some(tiny(0)),
        "bursty" => Some(bursty(0)),
        "hidden-terminal" => Some(hidden_terminal(0)),
        "poisson-churn" => Some(poisson_churn(0)),
        "overload-admission" => Some(overload_admission(0)),
        _ => None,
    }
}

/// Fig. 3 — the symmetric video network (`ρ = 0.9`) swept over `α*`.
#[must_use]
pub fn fig3(intervals: usize, seed: u64) -> Sweep {
    Sweep {
        name: "fig3",
        base: video(20, 0.55, 0.9, seed).with_intervals(intervals),
        axis: Axis::Alpha,
        points: (0..=6).map(|s| 0.40 + 0.05 * f64::from(s)).collect(),
        shape: None,
    }
}

/// Fig. 4 — the symmetric video network at `α* = 0.55` swept over `ρ`.
#[must_use]
pub fn fig4(intervals: usize, seed: u64) -> Sweep {
    Sweep {
        name: "fig4",
        base: video(20, 0.55, 0.9, seed).with_intervals(intervals),
        axis: Axis::Ratio,
        points: (0..=8).map(|s| 0.80 + 0.025 * f64::from(s)).collect(),
        shape: None,
    }
}

/// Fig. 5 — the convergence experiment: `α* = 0.55`, `ρ = 0.93`, tracking
/// the link holding the lowest priority at time 0.
#[must_use]
pub fn fig5(intervals: usize, seed: u64) -> Scenario {
    video(20, 0.55, 0.93, seed)
        .with_intervals(intervals)
        .with_track(19, 0.01)
}

/// Fig. 6 — the fixed-priority experiment at `α* = 0.6`.
#[must_use]
pub fn fig6(intervals: usize, seed: u64) -> Scenario {
    video(20, 0.6, 0.9, seed)
        .with_intervals(intervals)
        .with_policy(PolicySpec::FixedPriority)
}

/// Fig. 7 — the asymmetric network (`ρ = 0.9`) swept over `α*`
/// (`α_n = shape_n · α*`).
#[must_use]
pub fn fig7(intervals: usize, seed: u64) -> Sweep {
    Sweep {
        name: "fig7",
        base: asym(0.7, 0.9, seed).with_intervals(intervals),
        axis: Axis::Alpha,
        points: (0..=5).map(|s| 0.45 + 0.07 * f64::from(s)).collect(),
        shape: Some(asym_alpha_shape()),
    }
}

/// Fig. 8 — the asymmetric network at `α* = 0.7` swept over `ρ`.
#[must_use]
pub fn fig8(intervals: usize, seed: u64) -> Sweep {
    Sweep {
        name: "fig8",
        base: asym(0.7, 0.9, seed).with_intervals(intervals),
        axis: Axis::Ratio,
        points: (0..=6).map(|s| 0.80 + 0.03 * f64::from(s)).collect(),
        shape: None,
    }
}

/// Fig. 9 — the control network (`ρ = 0.99`) swept over `λ*`.
#[must_use]
pub fn fig9(intervals: usize, seed: u64) -> Sweep {
    Sweep {
        name: "fig9",
        base: control(10, 0.7, 0.99, seed).with_intervals(intervals),
        axis: Axis::Lambda,
        points: (0..=8).map(|s| 0.50 + 0.05 * f64::from(s)).collect(),
        shape: None,
    }
}

/// Fig. 10 — the control network at `λ* = 0.78` swept over `ρ`.
#[must_use]
pub fn fig10(intervals: usize, seed: u64) -> Sweep {
    Sweep {
        name: "fig10",
        base: control(10, 0.78, 0.99, seed).with_intervals(intervals),
        axis: Axis::Ratio,
        points: (0..=5).map(|s| 0.90 + 0.02 * f64::from(s)).collect(),
        shape: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_resolve() {
        for name in NAMES {
            let sc = by_name(name).unwrap_or_else(|| panic!("{name} must resolve"));
            assert_eq!(sc.name, name);
            assert!(sc.network().is_ok(), "{name} must build");
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn robustness_scenarios_carry_their_specs() {
        let sc = bursty(3);
        let fault = sc.fault.as_ref().unwrap();
        assert!(fault.burst.is_some() && fault.adaptive.is_some());
        assert_eq!(sc.seed, 3);

        let fault = hidden_terminal(0).fault.unwrap();
        assert_eq!(fault.hidden, vec![(0, 7), (7, 0), (3, 4)]);

        let fault = poisson_churn(0).fault.unwrap();
        assert!(fault.poisson.is_some());

        let sc = overload_admission(0);
        let fault = sc.fault.as_ref().unwrap();
        assert!(fault.flash_crowd.is_some());
        let adm = sc.admission.unwrap();
        assert!((adm.threshold - 0.75).abs() < 1e-12 && adm.shed);

        // The paper scenarios stay gate-free: the admission field only
        // appears where the robustness registry asks for it.
        for name in ["video20", "control10", "asym", "tiny"] {
            assert_eq!(by_name(name).unwrap().admission, None);
        }
    }

    #[test]
    fn fault_spec_builders_compose() {
        let spec = FaultSpec::sensing(0.01)
            .with_burst(0.1, 0.5, 0.2, 0.3)
            .with_hidden_pair(1, 2)
            .with_poisson_churn(0.005, 10.0)
            .with_flash_crowd(2, 2, 50)
            .with_adaptive_recovery(2, 16)
            .with_churn(0, 5, 5);
        let burst = spec.burst.unwrap();
        assert_eq!(
            (burst.p_enter_bad, burst.p_exit_bad),
            (0.1, 0.5),
            "builders must not clobber each other"
        );
        assert_eq!(spec.hidden, vec![(1, 2)]);
        assert!(spec.poisson.is_some() && spec.flash_crowd.is_some());
        let adaptive = spec.adaptive.unwrap();
        assert_eq!((adaptive.base, adaptive.cap), (2, 16));
        assert!(spec.churn.is_some());
    }

    #[test]
    fn scenario_matches_direct_builder() {
        // The scenario layer must reproduce a hand-built network bit for
        // bit: same config, same seed, same trajectory.
        let sc = video(4, 0.5, 0.9, 7).with_intervals(50);
        let a = sc.run().unwrap();
        let traffic = BurstUniform::symmetric(4, 0.5, 6).unwrap();
        let mut net = Network::builder()
            .links(4)
            .deadline_ms(20)
            .payload_bytes(1500)
            .uniform_success_probability(0.7)
            .traffic(Box::new(traffic))
            .delivery_ratio(0.9)
            .policy(PolicyKind::db_dp())
            .seed(7)
            .build()
            .unwrap();
        let b = net.run(50);
        assert_eq!(a, b);
    }

    #[test]
    fn sweep_at_replaces_only_the_axis() {
        let sweep = fig3(100, 1);
        let sc = sweep.at(0.40);
        assert_eq!(
            sc.traffic,
            TrafficSpec::Burst {
                alpha: Param::Uniform(0.40),
                burst_max: 6
            }
        );
        assert_eq!(sc.ratio, Param::Uniform(0.9));
        assert_eq!(sweep.scenarios().len(), 7);
    }

    #[test]
    fn asym_sweep_scales_by_shape() {
        let sweep = fig7(100, 1);
        let sc = sweep.at(0.5);
        match &sc.traffic {
            TrafficSpec::Burst { alpha, .. } => {
                let v = alpha.expand(20);
                assert_eq!(v[0], 0.25);
                assert_eq!(v[19], 0.5);
            }
            other => panic!("unexpected traffic {other:?}"),
        }
        // Success probabilities keep the two-group structure.
        assert_eq!(sc.success.expand(20)[0], 0.5);
        assert_eq!(sc.success.expand(20)[19], 0.8);
    }

    #[test]
    fn every_policy_spec_instantiates() {
        for spec in [
            PolicySpec::db_dp(),
            PolicySpec::db_dp_pairs(3),
            PolicySpec::eldf(),
            PolicySpec::Ldf,
            PolicySpec::Fcsma,
            PolicySpec::Dcf,
            PolicySpec::frame_csma(),
            PolicySpec::FixedPriority,
        ] {
            let sc = tiny(1).with_policy(spec).with_intervals(5);
            let report = sc.run().unwrap_or_else(|e| panic!("{spec:?}: {e}"));
            assert_eq!(report.intervals, 5, "{spec:?}");
        }
    }

    #[test]
    fn labels_are_the_paper_names() {
        assert_eq!(PolicySpec::db_dp().label(), "DB-DP");
        assert_eq!(PolicySpec::db_dp_pairs(3).label(), "DB-DP 3 pairs");
        assert_eq!(PolicySpec::Ldf.label(), "LDF");
        assert_eq!(PolicySpec::Fcsma.label(), "FCSMA");
    }

    #[test]
    fn to_builder_is_customizable() {
        // The escape hatch: start from a named workload, override a knob
        // the declarative form does not carry.
        let net = by_name("tiny")
            .unwrap()
            .to_builder()
            .payload_bytes(300)
            .build()
            .unwrap();
        assert_eq!(net.config().n_links(), 3);
    }

    #[test]
    fn track_is_wired_through() {
        let report = fig5(20, 3).run().unwrap();
        assert!(report.tracked.is_some());
    }
}
