//! Bounded exhaustive model checking of the DP protocol core.
//!
//! The DP protocol's value proposition (Algorithm 2 of the paper) is that
//! it is *provably* collision-free and keeps the priority vector σ a
//! permutation while reordering it one adjacent swap at a time. The
//! simulation crates spot-check those properties on sampled seeds; this
//! crate certifies them **exhaustively** for small configurations by
//! enumerating every protocol decision the engine can face:
//!
//! * every reachable priority permutation σ (DFS over the permutohedron,
//!   visited set indexed by [`rtmac_model::Permutation::rank`]),
//! * every arrival pattern with up to `A_max` packets per link,
//! * every drawn swap-candidate pair `C(k)`,
//! * every coin-flip vector ξ (via
//!   [`rtmac_mac::DpEngine::run_interval_with_coins`]),
//! * every per-attempt channel outcome (via [`BitScript`], a scripted
//!   [`rtmac_phy::channel::LossModel`] that branches each success bit).
//!
//! On every enumerated interval the checker asserts the paper's safety
//! properties ([`Property`]): collision-freedom, σ stays a bijection, at
//! most one adjacent swap per drawn pair and only at the drawn pair,
//! empty priority-claim packets from candidates without arrivals, the
//! debt recursion `d_n(k+1) = d_n(k) − S_n(k) + q_n` bit-for-bit, and
//! channel-log consistency. A violation is returned as a replayable
//! [`Counterexample`]: an interval-by-interval decision log from the
//! identity permutation to the failing state that [`replay`] can re-run
//! against any [`Subject`] — the regression harness in
//! `crates/verify/tests` replays them against both the real engine and
//! intentionally faulty mutants.
//!
//! The `rtmac-verify` binary wires this into CI (`--quick` gates every
//! push next to `rtmac-lint`).

pub mod channel;
pub mod checker;
pub mod counterexample;
pub mod subject;

pub use channel::BitScript;
pub use checker::{check, full_suite, quick_suite, CheckConfig, CheckStats, Property};
pub use counterexample::{replay, Counterexample, Step};
pub use subject::{EngineSubject, Subject};
