//! The `rtmac-netd` daemon: argument parsing and the run entry point.
//!
//! The binary in `src/bin/rtmac-netd.rs` is a thin shell around
//! [`parse`] and [`run`]; keeping the logic here makes it testable and
//! lets the CLI crate reuse the same spellings. One daemon process drives
//! one link of a deployment over UDP (see [`crate::LinkNode`] for the
//! lockstep protocol it runs).

use std::path::PathBuf;
use std::time::Duration;

use rtmac::scenario::EngineSpec;

use crate::error::NetError;
use crate::node::{LinkNode, NodeConfig, NodeReport};
use crate::scenario_file;
use crate::udp::UdpTransport;

/// The daemon's usage text.
pub const USAGE: &str = "\
rtmac-netd — one link of a DP deployment over UDP

USAGE:
    rtmac-netd --scenario <name|file> --link <i> --bind <addr> --peers <addr,addr,...> [options]

REQUIRED:
    --scenario <name|file>   registry scenario name or scenario file path
    --link <i>               this node's link index (0-based)
    --bind <addr>            local UDP address, e.g. 127.0.0.1:7000
    --peers <addr,...>       the other links' addresses (comma-separated)

OPTIONS:
    --intervals <n>          override the scenario's horizon
    --seed <n>               override the scenario's seed
    --engine <timeline|batched>  override the DP interval kernel
    --realtime               pace intervals at the scenario deadline rate
    --timeout-ms <n>         peer-silence budget (default 30000)
    --report <file>          write a key=value measurement report
    -h, --help               print this help

EXIT CODES:
    0  run completed, decision trace finalized
    1  protocol failure (desync, peer timeout, transport error)
    2  usage or configuration error
";

/// Parsed daemon arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetdOpts {
    /// Registry name or scenario file path.
    pub scenario: String,
    /// This node's link index.
    pub link: usize,
    /// Local UDP bind address.
    pub bind: String,
    /// Peer addresses (the other links, any order).
    pub peers: Vec<String>,
    /// Horizon override.
    pub intervals: Option<usize>,
    /// Seed override.
    pub seed: Option<u64>,
    /// Engine override.
    pub engine: Option<EngineSpec>,
    /// Pace intervals at the deadline rate.
    pub realtime: bool,
    /// Peer-silence budget.
    pub timeout: Duration,
    /// Where to write the `key=value` report, if anywhere.
    pub report: Option<PathBuf>,
}

/// Parses daemon arguments (everything after the program name).
///
/// # Errors
///
/// Returns [`NetError::Config`] describing the offending flag or value.
///
/// # Example
///
/// ```
/// let args: Vec<String> = ["--scenario", "tiny", "--link", "0",
///     "--bind", "127.0.0.1:7000", "--peers", "127.0.0.1:7001,127.0.0.1:7002"]
///     .iter().map(|s| s.to_string()).collect();
/// let opts = rtmac_net::netd::parse(&args).unwrap();
/// assert_eq!(opts.link, 0);
/// assert_eq!(opts.peers.len(), 2);
/// ```
pub fn parse(args: &[String]) -> Result<NetdOpts, NetError> {
    let mut scenario = None;
    let mut link = None;
    let mut bind = None;
    let mut peers = None;
    let mut opts = NetdOpts {
        scenario: String::new(),
        link: 0,
        bind: String::new(),
        peers: Vec::new(),
        intervals: None,
        seed: None,
        engine: None,
        realtime: false,
        timeout: Duration::from_secs(30),
        report: None,
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| NetError::Config(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--scenario" => scenario = Some(value("--scenario")?),
            "--link" => link = Some(parse_value("--link", &value("--link")?)?),
            "--bind" => bind = Some(value("--bind")?),
            "--peers" => {
                peers = Some(
                    value("--peers")?
                        .split(',')
                        .filter(|p| !p.trim().is_empty())
                        .map(|p| p.trim().to_string())
                        .collect::<Vec<_>>(),
                );
            }
            "--intervals" => {
                opts.intervals = Some(parse_value("--intervals", &value("--intervals")?)?)
            }
            "--seed" => opts.seed = Some(parse_value("--seed", &value("--seed")?)?),
            "--engine" => {
                opts.engine = Some(match value("--engine")?.as_str() {
                    "timeline" => EngineSpec::Timeline,
                    "batched" => EngineSpec::Batched,
                    other => {
                        return Err(NetError::Config(format!(
                            "unknown engine `{other}` (timeline, batched)"
                        )))
                    }
                });
            }
            "--realtime" => opts.realtime = true,
            "--timeout-ms" => {
                opts.timeout =
                    Duration::from_millis(parse_value("--timeout-ms", &value("--timeout-ms")?)?);
            }
            "--report" => opts.report = Some(PathBuf::from(value("--report")?)),
            other => return Err(NetError::Config(format!("unknown flag `{other}`"))),
        }
    }
    opts.scenario = scenario.ok_or_else(|| missing("--scenario"))?;
    opts.link = link.ok_or_else(|| missing("--link"))?;
    opts.bind = bind.ok_or_else(|| missing("--bind"))?;
    opts.peers = peers.ok_or_else(|| missing("--peers"))?;
    Ok(opts)
}

fn missing(flag: &str) -> NetError {
    NetError::Config(format!("{flag} is required"))
}

fn parse_value<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, NetError> {
    value
        .parse()
        .map_err(|_| NetError::Config(format!("bad value `{value}` for {flag}")))
}

/// Runs one daemon node to completion and writes the report file if one
/// was requested.
///
/// # Errors
///
/// Propagates scenario loading, transport, and lockstep errors; see
/// [`LinkNode::run`] for the protocol failure modes.
///
/// # Panics
///
/// Propagates policy-engine panics from the node's replica, as in
/// [`rtmac::Network::step`].
pub fn run(opts: &NetdOpts) -> Result<NodeReport, NetError> {
    let mut sc = scenario_file::load(&opts.scenario)?;
    if let Some(seed) = opts.seed {
        sc = sc.with_seed(seed);
    }
    if let Some(engine) = opts.engine {
        sc = sc.with_engine(engine);
    }
    let intervals = opts.intervals.unwrap_or(sc.intervals);
    let transport = UdpTransport::bind(&opts.bind, &opts.peers, opts.link, sc.links)?;
    let mut config = NodeConfig::new(sc, intervals);
    config.sync_timeout = opts.timeout;
    config.realtime = opts.realtime;
    let report = LinkNode::new(transport, config)?.run()?;
    if let Some(path) = &opts.report {
        std::fs::write(path, render_report(&report))
            .map_err(|e| NetError::Io(format!("cannot write report {}: {e}", path.display())))?;
    }
    Ok(report)
}

/// Renders a node report in the `key=value` format the emulation harness
/// reads back.
///
/// # Example
///
/// ```
/// use rtmac_net::{netd, LinkNode, LoopbackHub, NodeConfig};
///
/// let sc = rtmac::scenario::by_name("tiny").unwrap().with_links(1);
/// let ep = LoopbackHub::endpoints(1).remove(0);
/// let report = LinkNode::new(ep, NodeConfig::new(sc, 2)).unwrap().run().unwrap();
/// assert!(netd::render_report(&report).contains("link=0"));
/// ```
#[must_use]
pub fn render_report(report: &NodeReport) -> String {
    format!(
        "link={}\nfingerprint={:#018x}\nframes={}\nmisses={}\nmax_interval_us={}\nmean_interval_us={}\nintervals={}\nattempts={}\n",
        report.link,
        report.fingerprint,
        report.frames,
        report.misses,
        report.max_interval.as_micros(),
        report.mean_interval.as_micros(),
        report.report.intervals,
        report.report.attempts.iter().sum::<u64>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn full_flag_set_parses() {
        let opts = parse(&args(&[
            "--scenario",
            "control10",
            "--link",
            "3",
            "--bind",
            "127.0.0.1:7003",
            "--peers",
            "127.0.0.1:7000,127.0.0.1:7001",
            "--intervals",
            "500",
            "--seed",
            "42",
            "--engine",
            "batched",
            "--realtime",
            "--timeout-ms",
            "1500",
            "--report",
            "/tmp/r.txt",
        ]))
        .unwrap();
        assert_eq!(opts.link, 3);
        assert_eq!(opts.intervals, Some(500));
        assert_eq!(opts.seed, Some(42));
        assert_eq!(opts.engine, Some(EngineSpec::Batched));
        assert!(opts.realtime);
        assert_eq!(opts.timeout, Duration::from_millis(1500));
    }

    #[test]
    fn missing_required_flags_are_named() {
        let err = parse(&args(&["--link", "0"])).unwrap_err();
        assert!(matches!(err, NetError::Config(ref m) if m.contains("--scenario")));
    }

    #[test]
    fn unknown_flags_and_bad_values_are_rejected() {
        assert!(parse(&args(&["--frobnicate"])).is_err());
        assert!(parse(&args(&["--link", "minus-one"])).is_err());
        assert!(parse(&args(&["--engine", "warp"])).is_err());
    }
}
