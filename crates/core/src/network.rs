//! The end-to-end network simulator: arrivals → policy → debts → metrics.

use rtmac_mac::{
    BatchedDpEngine, ChurnEvent, DpConfig, FaultyDpEngine, IntervalOutcome, MacTiming,
    RecoveryConfig,
};
use rtmac_model::metrics::{ConvergenceTracker, DeficiencySeries};
use rtmac_model::{ConfigError, DebtLedger, LinkId, NetworkConfig, Requirements};
use rtmac_phy::channel::{Bernoulli, LossModel};
use rtmac_phy::fault::{BurstSensing, ChurnProcess, ChurnSchedule, FaultModel, HiddenMatrix};
use rtmac_phy::PhyProfile;
use rtmac_sim::{Nanos, SeedStream, SimRng};
use rtmac_traffic::{ArrivalProcess, BernoulliArrivals, BurstUniform, ConstantArrivals};

use crate::admission::{self, AdmissionReport};
use crate::scenario::{AdmissionSpec, EngineSpec, FaultSpec};
use crate::{DbDp, PolicyKind, RunReport, TransmissionPolicy};

/// Runtime state of the feasibility-aware admission gate (see
/// [`crate::admission`] for the decision helpers it replays).
#[derive(Debug, Clone)]
struct AdmissionState {
    threshold: f64,
    shed: bool,
    admitted: Vec<bool>,
    q: Vec<f64>,
    p: Vec<f64>,
    budget: u64,
    accepted: u64,
    rejected: u64,
    shed_count: u64,
    peak_utilization: f64,
}

impl AdmissionState {
    fn report(&self) -> AdmissionReport {
        AdmissionReport {
            admitted: self.admitted.clone(),
            accepted: self.accepted,
            rejected: self.rejected,
            shed: self.shed_count,
            peak_utilization: self.peak_utilization,
        }
    }
}

/// A complete simulated network: topology and channel (`rtmac-model`,
/// `rtmac-phy`), traffic (`rtmac-traffic`), a transmission policy, and the
/// delivery-debt ledger that closes the control loop.
///
/// Construct one with [`Network::builder`], then call [`Network::run`] (or
/// [`Network::step`] to drive interval by interval).
pub struct Network {
    config: NetworkConfig,
    requirements: Requirements,
    debts: DebtLedger,
    traffic: Box<dyn ArrivalProcess>,
    channel: Box<dyn LossModel>,
    policy: Box<dyn TransmissionPolicy>,
    arrival_rng: SimRng,
    protocol_rng: SimRng,
    arrivals_buf: Vec<u32>,
    // accumulated counters
    intervals: usize,
    deficiency: DeficiencySeries,
    attempts: Vec<u64>,
    latency_sums: Vec<Nanos>,
    collisions: u64,
    empty_packets: u64,
    idle_slots: u64,
    busy_time: Nanos,
    tracked: Option<ConvergenceTracker>,
    admission: Option<AdmissionState>,
    churn_events_buf: Vec<ChurnEvent>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("links", &self.config.n_links())
            .field("policy", &self.policy.name())
            .field("intervals", &self.intervals)
            .finish()
    }
}

impl Network {
    /// Starts building a network.
    #[must_use]
    pub fn builder() -> NetworkBuilder {
        NetworkBuilder::default()
    }

    /// The static network description.
    #[must_use]
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// The timely-throughput requirements.
    #[must_use]
    pub fn requirements(&self) -> &Requirements {
        &self.requirements
    }

    /// The live delivery-debt ledger.
    #[must_use]
    pub fn debts(&self) -> &DebtLedger {
        &self.debts
    }

    /// The policy's name.
    #[must_use]
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// The policy's current priority permutation, if it maintains one.
    #[must_use]
    pub fn sigma(&self) -> Option<&rtmac_model::Permutation> {
        self.policy.sigma()
    }

    /// Number of intervals simulated so far.
    #[must_use]
    pub fn intervals(&self) -> usize {
        self.intervals
    }

    /// The per-link arrival counts sampled by the most recent
    /// [`Network::step`] (empty before the first interval).
    ///
    /// This is the interval's ground truth for "did link `n` have traffic"
    /// — the transport layer (`rtmac-net`) classifies each link's interval
    /// as claim / busy / idle from it, and replica-based deployments use it
    /// to stamp per-link backlog into their frames.
    #[must_use]
    pub fn last_arrivals(&self) -> &[u32] {
        &self.arrivals_buf
    }

    /// Simulates one interval: samples arrivals, runs the policy, settles
    /// debts, and updates the metric streams. Returns the interval outcome.
    ///
    /// # Panics
    ///
    /// Propagates panics from the configured policy engine — notably the
    /// reference differential-test engine, which aborts on a diverged
    /// handshake rather than continuing a corrupted comparison run.
    pub fn step(&mut self) -> IntervalOutcome {
        self.traffic
            .sample(&mut self.arrival_rng, &mut self.arrivals_buf);
        let outcome = self.policy.run_interval(
            &self.arrivals_buf,
            &self.debts,
            self.channel.as_mut(),
            &mut self.protocol_rng,
        );
        self.debts.settle_interval(&outcome.deliveries);
        self.deficiency.record(&self.debts);
        if let Some(tracker) = &mut self.tracked {
            tracker.record(&self.debts);
        }
        for (a, &x) in self.attempts.iter_mut().zip(&outcome.attempts) {
            *a += x;
        }
        for (l, &x) in self.latency_sums.iter_mut().zip(&outcome.latency_sum) {
            *l += x;
        }
        // Long-lived accumulators saturate instead of wrapping: a batch
        // horizon is caller-chosen and these counters feed every report.
        self.collisions = self.collisions.saturating_add(outcome.collisions);
        self.empty_packets = self.empty_packets.saturating_add(outcome.empty_packets);
        self.idle_slots = self.idle_slots.saturating_add(outcome.idle_slots);
        self.busy_time = self.busy_time.saturating_add(outcome.busy_time);
        self.intervals = self.intervals.saturating_add(1);
        self.apply_admission();
        outcome
    }

    /// Drains this interval's churn transitions and replays the admission
    /// gate over them: joiners are admitted iff the admitted set stays at
    /// or under the utilization threshold; crashed links leave the set (and
    /// re-apply on revival); with shedding enabled an overloaded admitted
    /// set is trimmed lowest-debt-first. Rejected and shed links are
    /// administratively blocked until their next revival re-evaluates them.
    fn apply_admission(&mut self) {
        self.churn_events_buf.clear();
        self.policy.drain_churn_events(&mut self.churn_events_buf);
        let Some(state) = self.admission.as_mut() else {
            return;
        };
        let mut changed = false;
        for i in 0..self.churn_events_buf.len() {
            let ev = self.churn_events_buf[i];
            changed = true;
            if !ev.up {
                // A crashed link leaves the admitted set; its revival is a
                // fresh application.
                state.admitted[ev.link] = false;
                continue;
            }
            if admission::admit_decision(
                &state.q,
                &state.p,
                &state.admitted,
                ev.link,
                state.budget,
                state.threshold,
            ) {
                state.admitted[ev.link] = true;
                state.accepted = state.accepted.saturating_add(1);
                self.policy.set_blocked(ev.link, false);
            } else {
                state.rejected = state.rejected.saturating_add(1);
                self.policy.set_blocked(ev.link, true);
            }
        }
        if !changed {
            return;
        }
        let utilization =
            admission::admitted_utilization(&state.q, &state.p, &state.admitted, state.budget);
        state.peak_utilization = state.peak_utilization.max(utilization);
        if state.shed && utilization > state.threshold {
            let order = admission::shed_order(
                &state.q,
                &state.p,
                &state.admitted,
                self.debts.debts(),
                state.budget,
                state.threshold,
            );
            for v in order {
                state.admitted[v] = false;
                state.shed_count = state.shed_count.saturating_add(1);
                self.policy.set_blocked(v, true);
            }
        }
    }

    /// Runs `intervals` more intervals and returns the cumulative report.
    ///
    /// # Panics
    ///
    /// Propagates policy-engine panics, as in [`Network::step`].
    pub fn run(&mut self, intervals: usize) -> RunReport {
        for _ in 0..intervals {
            self.step();
        }
        self.report()
    }

    /// The cumulative report over everything simulated so far.
    #[must_use]
    pub fn report(&self) -> RunReport {
        let n = self.config.n_links();
        RunReport {
            policy: self.policy.name().to_string(),
            intervals: self.intervals,
            final_total_deficiency: self.deficiency.last().unwrap_or_else(|| {
                // No interval yet: deficiency is the full requirement.
                self.requirements.total()
            }),
            deficiency: self.deficiency.clone(),
            per_link_throughput: (0..n)
                .map(|l| self.debts.empirical_throughput(LinkId::new(l)))
                .collect(),
            final_debts: self.debts.debts().to_vec(),
            attempts: self.attempts.clone(),
            mean_latency: (0..n)
                .map(|l| {
                    self.latency_sums[l]
                        .as_nanos()
                        .checked_div(self.debts.cumulative_deliveries(LinkId::new(l)))
                        .map(Nanos::from_nanos)
                })
                .collect(),
            collisions: self.collisions,
            empty_packets: self.empty_packets,
            idle_slots: self.idle_slots,
            busy_time: self.busy_time,
            tracked: self.tracked.clone(),
            fault: self.policy.fault_stats(),
            admission: self.admission.as_ref().map(AdmissionState::report),
        }
    }
}

/// Fluent builder for [`Network`].
///
/// Minimal required calls: [`links`](Self::links), an arrival process, a
/// requirement (delivery ratio or explicit `q`), and a policy. Everything
/// else has paper defaults (802.11a PHY, 20 ms deadline, 1500 B payload,
/// reliable channel, seed 0).
pub struct NetworkBuilder {
    n_links: usize,
    deadline: Nanos,
    payload_bytes: u32,
    link_payloads: Option<Vec<u32>>,
    phy: PhyProfile,
    success: Option<Vec<f64>>,
    traffic: Option<Box<dyn ArrivalProcess>>,
    requirements: Option<Requirements>,
    delivery_ratio: Option<Vec<f64>>,
    policy: Option<PolicyKind>,
    channel: Option<Box<dyn LossModel>>,
    seed: u64,
    track: Option<(LinkId, f64)>,
    fault: Option<FaultSpec>,
    admission: Option<AdmissionSpec>,
    engine: EngineSpec,
}

impl Default for NetworkBuilder {
    fn default() -> Self {
        NetworkBuilder {
            n_links: 0,
            deadline: Nanos::from_millis(20),
            payload_bytes: 1500,
            link_payloads: None,
            phy: PhyProfile::ieee80211a(),
            success: None,
            traffic: None,
            requirements: None,
            delivery_ratio: None,
            policy: None,
            channel: None,
            seed: 0,
            track: None,
            fault: None,
            admission: None,
            engine: EngineSpec::Timeline,
        }
    }
}

impl NetworkBuilder {
    /// Sets the number of links `N` (required).
    #[must_use]
    pub fn links(mut self, n: usize) -> Self {
        self.n_links = n;
        self
    }

    /// Sets the per-packet deadline in milliseconds (default 20).
    #[must_use]
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.deadline = Nanos::from_millis(ms);
        self
    }

    /// Sets the per-packet deadline exactly.
    #[must_use]
    pub fn deadline(mut self, t: Nanos) -> Self {
        self.deadline = t;
        self
    }

    /// Sets the data payload size in bytes (default 1500).
    #[must_use]
    pub fn payload_bytes(mut self, bytes: u32) -> Self {
        self.payload_bytes = bytes;
        self
    }

    /// Gives each link its own payload size — mixed traffic classes (e.g.
    /// video and control links) sharing one medium. Overrides
    /// [`payload_bytes`](Self::payload_bytes) per link.
    #[must_use]
    pub fn link_payloads(mut self, payloads: Vec<u32>) -> Self {
        self.link_payloads = Some(payloads);
        self
    }

    /// Sets the PHY profile (default IEEE 802.11a).
    #[must_use]
    pub fn phy(mut self, phy: PhyProfile) -> Self {
        self.phy = phy;
        self
    }

    /// Every link succeeds with probability `p`.
    #[must_use]
    pub fn uniform_success_probability(mut self, p: f64) -> Self {
        self.success = Some(vec![p; self.n_links]);
        self
    }

    /// Per-link success probabilities.
    #[must_use]
    pub fn success_probabilities(mut self, p: Vec<f64>) -> Self {
        self.success = Some(p);
        self
    }

    /// Uses an arbitrary arrival process.
    #[must_use]
    pub fn traffic(mut self, traffic: Box<dyn ArrivalProcess>) -> Self {
        self.traffic = Some(traffic);
        self
    }

    /// The paper's video traffic: `U{1..6}` packets with probability
    /// `alpha`, else none.
    ///
    /// Call after [`links`](Self::links); validation happens in
    /// [`build`](Self::build).
    #[must_use]
    pub fn burst_arrivals(mut self, alpha: f64) -> Self {
        // An invalid alpha leaves traffic unset; build() then reports the
        // missing/invalid arrival process.
        self.traffic = BurstUniform::symmetric(self.n_links.max(1), alpha, 6)
            .ok()
            .map(|t| Box::new(t) as Box<dyn ArrivalProcess>);
        self
    }

    /// The paper's control traffic: one packet with probability `lambda`.
    #[must_use]
    pub fn bernoulli_arrivals(mut self, lambda: f64) -> Self {
        self.traffic = BernoulliArrivals::symmetric(self.n_links.max(1), lambda)
            .ok()
            .map(|t| Box::new(t) as Box<dyn ArrivalProcess>);
        self
    }

    /// Exactly one packet per link per interval.
    #[must_use]
    pub fn constant_arrivals(mut self) -> Self {
        self.traffic = ConstantArrivals::one_each(self.n_links.max(1))
            .ok()
            .map(|t| Box::new(t) as Box<dyn ArrivalProcess>);
        self
    }

    /// Requires delivery ratio `rho` on every link (`q_n = ρ·λ_n`, with
    /// `λ_n` taken from the traffic process).
    #[must_use]
    pub fn delivery_ratio(mut self, rho: f64) -> Self {
        self.delivery_ratio = Some(vec![rho; self.n_links]);
        self
    }

    /// Per-link delivery ratios.
    #[must_use]
    pub fn delivery_ratios(mut self, rho: Vec<f64>) -> Self {
        self.delivery_ratio = Some(rho);
        self
    }

    /// Explicit timely-throughput requirements `q_n` (overrides delivery
    /// ratios).
    #[must_use]
    pub fn requirements(mut self, q: Requirements) -> Self {
        self.requirements = Some(q);
        self
    }

    /// Selects the transmission policy (required).
    #[must_use]
    pub fn policy(mut self, kind: PolicyKind) -> Self {
        self.policy = Some(kind);
        self
    }

    /// Overrides the loss model (default: Bernoulli with the configured
    /// success probabilities).
    #[must_use]
    pub fn channel(mut self, channel: Box<dyn LossModel>) -> Self {
        self.channel = Some(channel);
        self
    }

    /// Seeds every random stream (default 0). Equal seeds give bit-equal
    /// runs.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Tracks one link's running timely-throughput and convergence into a
    /// `1 − band` neighborhood of its requirement (Fig. 5).
    #[must_use]
    pub fn track_link(mut self, link: LinkId, band: f64) -> Self {
        self.track = Some((link, band));
        self
    }

    /// Injects carrier-sensing faults and link churn into the run. Only the
    /// DB-DP policy supports fault injection (it switches to the degraded
    /// [`FaultyDpEngine`] path); [`build`](Self::build) rejects the
    /// combination with any other policy.
    #[must_use]
    pub fn fault(mut self, fault: FaultSpec) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Enables the feasibility-aware admission gate: at every churn event
    /// the network admits or rejects arriving links against the Lemma-2
    /// utilization threshold, and (when `spec.shed` is set) trims an
    /// overloaded admitted set lowest-debt-first. Requires fault injection
    /// — [`build`](Self::build) rejects admission without a
    /// [`fault`](Self::fault) spec, because the degraded DB-DP engine is
    /// the only substrate with churn events and administrative blocking.
    #[must_use]
    pub fn admission(mut self, spec: AdmissionSpec) -> Self {
        self.admission = Some(spec);
        self
    }

    /// Selects the DP interval kernel (default [`EngineSpec::Timeline`]).
    /// [`EngineSpec::Batched`] runs the massive-N [`BatchedDpEngine`] —
    /// bit-identical results, `O(min(N, deadline/slot))` per interval —
    /// and is only supported for the fault-free DB-DP policy;
    /// [`build`](Self::build) rejects every other combination.
    #[must_use]
    pub fn engine(mut self, engine: EngineSpec) -> Self {
        self.engine = engine;
        self
    }

    /// Validates everything and builds the [`Network`].
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the topology, probabilities, traffic,
    /// requirements, or policy are missing or inconsistent.
    pub fn build(self) -> Result<Network, ConfigError> {
        let success = self.success.unwrap_or_else(|| vec![1.0; self.n_links]);
        let config = NetworkConfig::builder(self.n_links)
            .deadline(self.deadline)
            .success_probabilities(success)
            .build()?;

        let traffic = self.traffic.ok_or(ConfigError::InvalidParameter {
            name: "traffic (arrival process required, and its parameters must be valid)",
            value: f64::NAN,
        })?;
        if traffic.n_links() != config.n_links() {
            return Err(ConfigError::LengthMismatch {
                what: "arrival process links",
                expected: config.n_links(),
                actual: traffic.n_links(),
            });
        }

        let requirements = match (self.requirements, self.delivery_ratio) {
            (Some(q), _) => q,
            (None, Some(rho)) => {
                let lambda: Vec<f64> = (0..config.n_links())
                    .map(|l| traffic.mean(LinkId::new(l)))
                    .collect();
                Requirements::from_delivery_ratios(&lambda, &rho)?
            }
            (None, None) => {
                return Err(ConfigError::InvalidParameter {
                    name: "requirements (set delivery_ratio or requirements)",
                    value: f64::NAN,
                })
            }
        };
        if requirements.len() != config.n_links() {
            return Err(ConfigError::LengthMismatch {
                what: "requirements",
                expected: config.n_links(),
                actual: requirements.len(),
            });
        }

        let channel = match self.channel {
            Some(c) => {
                if c.n_links() != config.n_links() {
                    return Err(ConfigError::LengthMismatch {
                        what: "channel links",
                        expected: config.n_links(),
                        actual: c.n_links(),
                    });
                }
                c
            }
            None => Box::new(Bernoulli::new(config.success_probabilities().to_vec())?),
        };

        let kind = self.policy.ok_or(ConfigError::InvalidParameter {
            name: "policy (call .policy(PolicyKind::...))",
            value: f64::NAN,
        })?;
        let mut timing = MacTiming::new(self.phy, config.deadline(), self.payload_bytes);
        if let Some(payloads) = self.link_payloads {
            if payloads.len() != config.n_links() {
                return Err(ConfigError::LengthMismatch {
                    what: "per-link payloads",
                    expected: config.n_links(),
                    actual: payloads.len(),
                });
            }
            timing = timing.with_link_payloads(&payloads);
        }
        // Links dark at interval 0 (flash-crowd blocks, crash_at == 0
        // events) start outside the admission gate's admitted set.
        let initially_down: Option<Vec<bool>> = self.fault.as_ref().map(|spec| {
            let mut down = vec![false; config.n_links()];
            if let Some(fc) = spec.flash_crowd {
                let end = fc.first_link.saturating_add(fc.count).min(down.len());
                for flag in down.iter_mut().take(end).skip(fc.first_link.min(end)) {
                    *flag = true;
                }
            }
            if let Some(c) = spec.churn {
                if c.crash_at == 0 && c.link < down.len() {
                    down[c.link] = true;
                }
            }
            down
        });
        let budget = timing.max_transmissions();
        let seeds = SeedStream::new(self.seed);
        let mut policy: Box<dyn TransmissionPolicy> = match (kind, self.fault, self.engine) {
            (
                PolicyKind::DbDp {
                    influence,
                    r,
                    swap_pairs,
                },
                None,
                EngineSpec::Batched,
            ) => Box::new(DbDp::batched(
                BatchedDpEngine::new(
                    DpConfig::new(timing).with_swap_pairs(swap_pairs),
                    config.n_links(),
                ),
                influence,
                r,
                config.success_probabilities().to_vec(),
            )),
            (_, Some(spec), EngineSpec::Batched) => {
                return Err(ConfigError::InvalidParameter {
                    name: "engine (the batched kernel does not support fault injection; \
                           use the timeline engine)",
                    value: spec.false_busy,
                })
            }
            (_, None, EngineSpec::Batched) => {
                return Err(ConfigError::InvalidParameter {
                    name: "engine (the batched kernel only drives the DB-DP policy)",
                    value: f64::NAN,
                })
            }
            (
                PolicyKind::DbDp {
                    influence,
                    r,
                    swap_pairs,
                },
                Some(spec),
                EngineSpec::Timeline,
            ) => {
                for (name, p) in [
                    ("fault false_busy (must lie in [0, 1))", spec.false_busy),
                    ("fault false_idle (must lie in [0, 1))", spec.false_idle),
                ] {
                    if !(0.0..1.0).contains(&p) {
                        return Err(ConfigError::InvalidParameter { name, value: p });
                    }
                }
                if spec.miss_limit == 0 {
                    return Err(ConfigError::InvalidParameter {
                        name: "fault miss_limit (must be at least 1)",
                        value: 0.0,
                    });
                }
                let recovery = match spec.adaptive {
                    Some(a) => {
                        if a.base == 0 {
                            return Err(ConfigError::InvalidParameter {
                                name: "adaptive recovery base (must be at least 1)",
                                value: 0.0,
                            });
                        }
                        if a.cap < a.base {
                            return Err(ConfigError::InvalidParameter {
                                name: "adaptive recovery cap (must be at least the base)",
                                value: f64::from(a.cap),
                            });
                        }
                        RecoveryConfig::new().with_adaptive_miss_limit(a.base, a.cap)
                    }
                    None => RecoveryConfig::new().with_miss_limit(spec.miss_limit),
                };
                let mut fault_model =
                    FaultModel::new(spec.false_busy, spec.false_idle, seeds.rng(3));
                if let Some(b) = spec.burst {
                    if !(b.p_enter_bad.is_finite() && (0.0..1.0).contains(&b.p_enter_bad)) {
                        return Err(ConfigError::InvalidParameter {
                            name: "burst p_enter_bad (must lie in [0, 1))",
                            value: b.p_enter_bad,
                        });
                    }
                    if !(b.p_exit_bad.is_finite() && b.p_exit_bad > 0.0 && b.p_exit_bad <= 1.0) {
                        return Err(ConfigError::InvalidParameter {
                            name: "burst p_exit_bad (must lie in (0, 1])",
                            value: b.p_exit_bad,
                        });
                    }
                    for (name, p) in [
                        (
                            "burst bad_false_busy (must lie in [0, 1))",
                            b.bad_false_busy,
                        ),
                        (
                            "burst bad_false_idle (must lie in [0, 1))",
                            b.bad_false_idle,
                        ),
                    ] {
                        if !(0.0..1.0).contains(&p) {
                            return Err(ConfigError::InvalidParameter { name, value: p });
                        }
                    }
                    // Lane 5 drives the Gilbert–Elliott state chains so the
                    // flip stream on lane 3 stays aligned with the i.i.d.
                    // model (the equal-rate reduction law).
                    fault_model = fault_model.with_burst(
                        config.n_links(),
                        BurstSensing::new(
                            b.p_enter_bad,
                            b.p_exit_bad,
                            b.bad_false_busy,
                            b.bad_false_idle,
                        ),
                        seeds.rng(5),
                    );
                }
                let mut engine = FaultyDpEngine::new(
                    DpConfig::new(timing).with_swap_pairs(swap_pairs),
                    config.n_links(),
                )
                .with_fault_model(fault_model)
                .with_recovery(recovery);
                if !spec.hidden.is_empty() {
                    let mut matrix = HiddenMatrix::new(config.n_links());
                    for &(listener, transmitter) in &spec.hidden {
                        if listener >= config.n_links()
                            || transmitter >= config.n_links()
                            || listener == transmitter
                        {
                            return Err(ConfigError::InvalidParameter {
                                name: "hidden pair (distinct in-range links required)",
                                value: listener as f64,
                            });
                        }
                        matrix.hide(listener, transmitter);
                    }
                    engine = engine.with_hidden(matrix);
                }
                if spec.churn.is_some() || spec.flash_crowd.is_some() || spec.poisson.is_some() {
                    let mut churn_process = ChurnProcess::new(config.n_links());
                    if let Some(churn) = spec.churn {
                        if churn.link >= config.n_links() {
                            return Err(ConfigError::InvalidParameter {
                                name: "churn link",
                                value: churn.link as f64,
                            });
                        }
                        if churn.down_intervals == 0 {
                            return Err(ConfigError::InvalidParameter {
                                name: "churn down_intervals (a crash must last at least one \
                                       interval)",
                                value: 0.0,
                            });
                        }
                        churn_process = churn_process.with_event(ChurnSchedule::new(
                            LinkId::new(churn.link),
                            churn.crash_at,
                            churn.down_intervals,
                        ));
                    }
                    if let Some(fc) = spec.flash_crowd {
                        if fc.count == 0
                            || fc.first_link.saturating_add(fc.count) > config.n_links()
                        {
                            return Err(ConfigError::InvalidParameter {
                                name: "flash crowd range (must be a nonempty in-range block)",
                                value: fc.first_link as f64,
                            });
                        }
                        if fc.join_at == 0 {
                            return Err(ConfigError::InvalidParameter {
                                name: "flash crowd join_at (the block must start dark)",
                                value: 0.0,
                            });
                        }
                        churn_process =
                            churn_process.with_flash_crowd(fc.first_link, fc.count, fc.join_at);
                    }
                    if let Some(pc) = spec.poisson {
                        if !(pc.crash_rate.is_finite() && (0.0..1.0).contains(&pc.crash_rate)) {
                            return Err(ConfigError::InvalidParameter {
                                name: "poisson churn crash_rate (must lie in [0, 1))",
                                value: pc.crash_rate,
                            });
                        }
                        if !(pc.mean_down.is_finite() && pc.mean_down >= 1.0) {
                            return Err(ConfigError::InvalidParameter {
                                name: "poisson churn mean_down (must be at least 1 interval)",
                                value: pc.mean_down,
                            });
                        }
                        // Lane 4 is the churn process's dedicated stream.
                        churn_process =
                            churn_process.with_poisson(pc.crash_rate, pc.mean_down, seeds.rng(4));
                    }
                    engine = engine.with_churn_process(churn_process);
                }
                Box::new(DbDp::with_faults(
                    engine,
                    influence,
                    r,
                    config.success_probabilities().to_vec(),
                ))
            }
            (_, Some(spec), EngineSpec::Timeline) => {
                return Err(ConfigError::InvalidParameter {
                    name: "fault (fault injection requires the DB-DP policy)",
                    value: spec.false_busy,
                })
            }
            (kind, None, EngineSpec::Timeline) => {
                kind.instantiate(config.n_links(), config.success_probabilities(), timing)
            }
        };
        let tracked = match self.track {
            Some((link, band)) => {
                if link.index() >= config.n_links() {
                    return Err(ConfigError::InvalidParameter {
                        name: "tracked link",
                        value: link.index() as f64,
                    });
                }
                Some(ConvergenceTracker::new(link, requirements.q(link), band))
            }
            None => None,
        };

        let n = config.n_links();
        let admission_state = match self.admission {
            None => None,
            Some(spec) => {
                if !(spec.threshold.is_finite() && spec.threshold > 0.0) {
                    return Err(ConfigError::InvalidParameter {
                        name: "admission threshold (must be finite and positive)",
                        value: spec.threshold,
                    });
                }
                let Some(down) = initially_down else {
                    return Err(ConfigError::InvalidParameter {
                        name: "admission (requires fault injection: the degraded DB-DP path \
                               is the only substrate with churn events and blocking)",
                        value: spec.threshold,
                    });
                };
                if budget == 0 {
                    return Err(ConfigError::InvalidParameter {
                        name: "admission budget (deadline shorter than one data airtime)",
                        value: 0.0,
                    });
                }
                let q: Vec<f64> = (0..n).map(|l| requirements.q(LinkId::new(l))).collect();
                let p = config.success_probabilities().to_vec();
                let admitted: Vec<bool> = down.iter().map(|&d| !d).collect();
                let mut state = AdmissionState {
                    threshold: spec.threshold,
                    shed: spec.shed,
                    admitted,
                    q,
                    p,
                    budget,
                    accepted: 0,
                    rejected: 0,
                    shed_count: 0,
                    peak_utilization: 0.0,
                };
                // Interval-0 pass: links up from the start are
                // grandfathered in, then shed if they already overload.
                let utilization = admission::admitted_utilization(
                    &state.q,
                    &state.p,
                    &state.admitted,
                    state.budget,
                );
                state.peak_utilization = utilization;
                if state.shed && utilization > state.threshold {
                    let zero_debts = vec![0.0; n];
                    for v in admission::shed_order(
                        &state.q,
                        &state.p,
                        &state.admitted,
                        &zero_debts,
                        state.budget,
                        state.threshold,
                    ) {
                        state.admitted[v] = false;
                        state.shed_count += 1;
                        policy.set_blocked(v, true);
                    }
                }
                Some(state)
            }
        };
        Ok(Network {
            config,
            debts: DebtLedger::new(requirements.clone()),
            requirements,
            traffic,
            channel,
            policy,
            arrival_rng: seeds.rng(1),
            protocol_rng: seeds.rng(2),
            arrivals_buf: Vec::with_capacity(n),
            intervals: 0,
            deficiency: DeficiencySeries::new(),
            attempts: vec![0; n],
            latency_sums: vec![Nanos::ZERO; n],
            collisions: 0,
            empty_packets: 0,
            idle_slots: 0,
            busy_time: Nanos::ZERO,
            tracked,
            admission: admission_state,
            churn_events_buf: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_builder() -> NetworkBuilder {
        Network::builder()
            .links(4)
            .deadline_ms(2)
            .payload_bytes(100)
            .uniform_success_probability(0.8)
            .bernoulli_arrivals(0.9)
            .delivery_ratio(0.9)
            .seed(1)
    }

    #[test]
    fn builds_and_runs_db_dp() {
        let mut net = base_builder().policy(PolicyKind::db_dp()).build().unwrap();
        let report = net.run(200);
        assert_eq!(report.intervals, 200);
        assert_eq!(report.per_link_throughput.len(), 4);
        assert!(report.final_total_deficiency < 0.2);
        assert_eq!(report.collisions, 0, "DP protocol is collision-free");
    }

    #[test]
    fn deterministic_under_equal_seeds() {
        let run = || {
            let mut net = base_builder().policy(PolicyKind::db_dp()).build().unwrap();
            net.run(100).per_link_throughput
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_differ() {
        let run = |seed: u64| {
            let mut net = base_builder()
                .seed(seed)
                .policy(PolicyKind::db_dp())
                .build()
                .unwrap();
            net.run(100).deficiency.as_slice().to_vec()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn ldf_baseline_fulfills_feasible_requirement() {
        let mut net = base_builder().policy(PolicyKind::Ldf).build().unwrap();
        let report = net.run(400);
        assert!(report.final_total_deficiency < 0.1);
    }

    #[test]
    fn missing_pieces_are_reported() {
        assert!(Network::builder().links(2).build().is_err()); // no traffic
        assert!(Network::builder()
            .links(2)
            .bernoulli_arrivals(0.5)
            .build()
            .is_err()); // no requirements
        assert!(Network::builder()
            .links(2)
            .bernoulli_arrivals(0.5)
            .delivery_ratio(0.9)
            .build()
            .is_err()); // no policy
        assert!(Network::builder()
            .links(0)
            .bernoulli_arrivals(0.5)
            .delivery_ratio(0.9)
            .policy(PolicyKind::Ldf)
            .build()
            .is_err()); // no links
    }

    #[test]
    fn tracker_follows_link() {
        let mut net = base_builder()
            .track_link(LinkId::new(2), 0.05)
            .policy(PolicyKind::Ldf)
            .build()
            .unwrap();
        let report = net.run(300);
        let tracker = report.tracked.expect("tracker configured");
        assert_eq!(tracker.link(), LinkId::new(2));
        assert_eq!(tracker.history().len(), 300);
        assert!(tracker.converged_at().is_some());
    }

    #[test]
    fn step_exposes_interval_outcomes() {
        let mut net = base_builder().policy(PolicyKind::Ldf).build().unwrap();
        let out = net.step();
        assert_eq!(out.deliveries.len(), 4);
        assert_eq!(net.intervals(), 1);
        assert_eq!(net.debts().interval(), 1);
    }

    #[test]
    fn report_before_any_interval_shows_full_requirement() {
        let net = base_builder().policy(PolicyKind::Ldf).build().unwrap();
        let report = net.report();
        // q_n = 0.9 · 0.9 = 0.81 per link, 4 links.
        assert!((report.final_total_deficiency - 4.0 * 0.81).abs() < 1e-9);
    }

    #[test]
    fn link_payloads_validated_and_applied() {
        // Wrong length rejected.
        assert!(matches!(
            base_builder()
                .link_payloads(vec![100, 1500])
                .policy(PolicyKind::Ldf)
                .build(),
            Err(ConfigError::LengthMismatch { .. })
        ));
        // Correct length builds and runs.
        let mut net = base_builder()
            .link_payloads(vec![100, 1500, 100, 1500])
            .policy(PolicyKind::Ldf)
            .build()
            .unwrap();
        let report = net.run(100);
        assert_eq!(report.per_link_throughput.len(), 4);
    }

    #[test]
    fn mean_latency_reported_within_deadline() {
        let mut net = base_builder().policy(PolicyKind::Ldf).build().unwrap();
        let report = net.run(300);
        for latency in report.mean_latency.iter().flatten() {
            assert!(*latency <= Nanos::from_millis(2));
            assert!(!latency.is_zero());
        }
    }

    #[test]
    fn fault_injection_runs_and_reports() {
        let mut net = base_builder()
            .fault(FaultSpec::sensing(0.05).with_churn(1, 20, 10))
            .policy(PolicyKind::db_dp())
            .build()
            .unwrap();
        let report = net.run(300);
        let stats = report.fault.expect("degraded DB-DP exposes fault stats");
        assert!(
            stats.sensing_flips > 0,
            "ε = 0.05 over 300 intervals must flip"
        );
        // Deterministic at seed 1: sensing faults desynchronize the priority
        // beliefs and recovery restores the bijection at least once.
        assert!(stats.desync_intervals > 0);
        assert!(stats.reconvergences > 0);
        assert!(report.policy.contains("degraded"));
    }

    #[test]
    fn zero_rate_fault_matches_pristine_numbers() {
        let pristine = base_builder()
            .policy(PolicyKind::db_dp())
            .build()
            .unwrap()
            .run(150);
        let faulty = base_builder()
            .fault(FaultSpec::sensing(0.0))
            .policy(PolicyKind::db_dp())
            .build()
            .unwrap()
            .run(150);
        // Same seeds, zero fault rates: the degraded engine replays the
        // pristine protocol bit-for-bit.
        assert_eq!(pristine.per_link_throughput, faulty.per_link_throughput);
        assert_eq!(pristine.deficiency, faulty.deficiency);
        assert_eq!(pristine.collisions, faulty.collisions);
        assert_eq!(pristine.busy_time, faulty.busy_time);
        assert_eq!(faulty.fault.unwrap().sensing_flips, 0);
    }

    #[test]
    fn fault_injection_requires_db_dp() {
        assert!(matches!(
            base_builder()
                .fault(FaultSpec::sensing(0.01))
                .policy(PolicyKind::Ldf)
                .build(),
            Err(ConfigError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn fault_parameters_validated() {
        let fault_build = |spec: FaultSpec| {
            base_builder()
                .fault(spec)
                .policy(PolicyKind::db_dp())
                .build()
        };
        assert!(fault_build(FaultSpec::sensing(1.0)).is_err());
        assert!(fault_build(FaultSpec::sensing(-0.1)).is_err());
        assert!(fault_build(FaultSpec::sensing(0.01).with_miss_limit(0)).is_err());
        assert!(fault_build(FaultSpec::sensing(0.01).with_churn(9, 5, 5)).is_err());
        assert!(fault_build(FaultSpec::sensing(0.01).with_churn(1, 5, 0)).is_err());
        assert!(fault_build(FaultSpec::sensing(0.01).with_churn(1, 5, 5)).is_ok());
    }

    #[test]
    fn burst_sensing_and_adaptive_recovery_run() {
        let mut net = base_builder()
            .fault(
                FaultSpec::sensing(0.01)
                    .with_burst(1.0 / 16.0, 0.25, 0.3, 0.3)
                    .with_adaptive_recovery(2, 16),
            )
            .policy(PolicyKind::db_dp())
            .build()
            .unwrap();
        let report = net.run(400);
        let stats = report.fault.expect("degraded path reports stats");
        assert!(
            stats.sensing_flips > 0,
            "bad-state ε = 0.3 over 400 intervals must flip"
        );
    }

    #[test]
    fn extended_fault_parameters_validated() {
        let fb = |spec: FaultSpec| {
            base_builder()
                .fault(spec)
                .policy(PolicyKind::db_dp())
                .build()
        };
        // Gilbert–Elliott chain parameters.
        assert!(fb(FaultSpec::sensing(0.01).with_burst(1.5, 0.5, 0.2, 0.2)).is_err());
        assert!(fb(FaultSpec::sensing(0.01).with_burst(0.1, 0.0, 0.2, 0.2)).is_err());
        assert!(fb(FaultSpec::sensing(0.01).with_burst(0.1, 0.5, 1.0, 0.2)).is_err());
        assert!(fb(FaultSpec::sensing(0.01).with_burst(0.1, 0.5, 0.2, 0.2)).is_ok());
        // Hidden-terminal pairs must be distinct in-range links.
        assert!(fb(FaultSpec::sensing(0.01).with_hidden_pair(0, 0)).is_err());
        assert!(fb(FaultSpec::sensing(0.01).with_hidden_pair(0, 9)).is_err());
        assert!(fb(FaultSpec::sensing(0.01).with_hidden_pair(0, 3)).is_ok());
        // Poisson churn rates.
        assert!(fb(FaultSpec::sensing(0.01).with_poisson_churn(1.0, 5.0)).is_err());
        assert!(fb(FaultSpec::sensing(0.01).with_poisson_churn(0.01, 0.5)).is_err());
        assert!(fb(FaultSpec::sensing(0.01).with_poisson_churn(0.01, 5.0)).is_ok());
        // Flash crowds.
        assert!(fb(FaultSpec::sensing(0.01).with_flash_crowd(0, 0, 5)).is_err());
        assert!(fb(FaultSpec::sensing(0.01).with_flash_crowd(3, 2, 5)).is_err());
        assert!(fb(FaultSpec::sensing(0.01).with_flash_crowd(2, 2, 0)).is_err());
        assert!(fb(FaultSpec::sensing(0.01).with_flash_crowd(2, 2, 5)).is_ok());
        // Adaptive recovery.
        assert!(fb(FaultSpec::sensing(0.01).with_adaptive_recovery(0, 4)).is_err());
        assert!(fb(FaultSpec::sensing(0.01).with_adaptive_recovery(8, 4)).is_err());
        assert!(fb(FaultSpec::sensing(0.01).with_adaptive_recovery(2, 8)).is_ok());
    }

    #[test]
    fn admission_requires_fault_injection() {
        assert!(matches!(
            base_builder()
                .admission(AdmissionSpec::new(0.9))
                .policy(PolicyKind::db_dp())
                .build(),
            Err(ConfigError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn permissive_admission_leaves_the_run_untouched() {
        let faulty = base_builder()
            .fault(FaultSpec::sensing(0.0))
            .policy(PolicyKind::db_dp())
            .build()
            .unwrap()
            .run(150);
        let gated = base_builder()
            .fault(FaultSpec::sensing(0.0))
            .admission(AdmissionSpec::new(100.0))
            .policy(PolicyKind::db_dp())
            .build()
            .unwrap()
            .run(150);
        // A generous threshold with no churn makes no decisions, so the
        // gated run replays the ungated one bit-for-bit.
        assert_eq!(faulty.per_link_throughput, gated.per_link_throughput);
        assert_eq!(faulty.deficiency, gated.deficiency);
        let adm = gated.admission.expect("gate configured");
        assert_eq!((adm.accepted, adm.rejected, adm.shed), (0, 0, 0));
        assert!(adm.admitted.iter().all(|&a| a));
        assert_eq!(faulty.admission, None);
    }

    #[test]
    fn admission_sheds_lowest_index_on_startup_overload() {
        // Each link needs q/p = 0.81/0.8 ≈ 1.0125 of a 16-transmission
        // budget (~0.063 utilization); four links are ~0.25. A 0.15
        // threshold forces two zero-debt sheds at build time, ties broken
        // by lowest index.
        let mut net = base_builder()
            .fault(FaultSpec::sensing(0.0))
            .admission(AdmissionSpec::new(0.15))
            .policy(PolicyKind::db_dp())
            .build()
            .unwrap();
        let report = net.run(50);
        let adm = report.admission.expect("gate configured");
        assert_eq!(adm.admitted, vec![false, false, true, true]);
        assert_eq!(adm.shed, 2);
        assert!(adm.peak_utilization > 0.15);
    }

    #[test]
    fn admission_without_shedding_only_gates_arrivals() {
        let mut net = base_builder()
            .fault(FaultSpec::sensing(0.0))
            .admission(AdmissionSpec::new(0.15).without_shedding())
            .policy(PolicyKind::db_dp())
            .build()
            .unwrap();
        let report = net.run(50);
        let adm = report.admission.expect("gate configured");
        assert!(
            adm.admitted.iter().all(|&a| a),
            "no shedding, nobody dropped"
        );
        assert_eq!(adm.shed, 0);
    }

    #[test]
    fn admission_bounds_admitted_debts_under_flash_crowd_overload() {
        // The pinned overload demonstration (ISSUE 9 acceptance): a 24-link
        // flash crowd whose full set is Lemma-2 infeasible (Σ q/p ≈ 19.5 on
        // a 16-transmission budget). With the gate, the admitted set stays
        // under the 0.75 threshold and its debts stay bounded; without it,
        // debts grow without bound on every sample path (Singh–Hou–Kumar).
        let intervals = 1500;
        let sc = crate::scenario::overload_admission(2018);
        let gated = sc.network().unwrap().run(intervals);
        let adm = gated.admission.expect("overload-admission carries a gate");
        assert!(adm.accepted > 0, "some of the flash crowd fits");
        assert!(adm.rejected > 0, "the infeasible remainder is rejected");
        assert!(adm.peak_utilization <= 0.75 + 1e-9);
        let max_admitted_debt = adm
            .admitted
            .iter()
            .zip(&gated.final_debts)
            .filter(|(&is_in, _)| is_in)
            .map(|(_, &d)| d)
            .fold(0.0f64, f64::max);

        let mut ungated_sc = sc;
        ungated_sc.admission = None;
        let ungated = ungated_sc.network().unwrap().run(intervals);
        let max_ungated_debt = ungated.final_debts.iter().fold(0.0f64, |a, &d| a.max(d));

        assert!(
            max_admitted_debt < 150.0,
            "admitted-set debts stay bounded, got {max_admitted_debt}"
        );
        assert!(
            max_ungated_debt > 4.0 * max_admitted_debt.max(1.0),
            "the ungated overload blows up: {max_ungated_debt} vs {max_admitted_debt}"
        );
    }

    #[test]
    fn sigma_accessor_for_dp_policies() {
        let net = base_builder().policy(PolicyKind::db_dp()).build().unwrap();
        assert!(net.sigma().is_some());
        let net = base_builder().policy(PolicyKind::Ldf).build().unwrap();
        assert!(net.sigma().is_none());
    }
}
