//! # rtmac-traffic
//!
//! Arrival processes for deadline-constrained wireless traffic.
//!
//! The paper models arrivals as an i.i.d. sequence of *vectors* `A(k)`:
//! every link receives its packets at the beginning of interval `k`, counts
//! are bounded by `A_max`, and counts of different links may be correlated
//! within an interval. This crate provides the two processes the evaluation
//! uses, plus several more for tests and extensions:
//!
//! * [`BurstUniform`] — the Fig. 3–8 video model: `U{1..6}` with
//!   probability `α_n`, else 0 (mean `3.5·α_n`).
//! * [`BernoulliArrivals`] — the Fig. 9–10 control model: one packet with
//!   probability `λ_n`.
//! * [`ConstantArrivals`] — deterministic arrivals (the classic one packet
//!   per interval setting where timely-throughput equals delivery ratio).
//! * [`TruncatedPoisson`] — Poisson counts clipped at `A_max`.
//! * [`CorrelatedShock`] — a common-shock mixture demonstrating the
//!   paper's "arrivals of different links might still be correlated".
//! * [`TraceReplay`] — replays a recorded arrival matrix.
//!
//! # Example
//!
//! ```
//! use rtmac_traffic::{ArrivalProcess, BurstUniform};
//! use rtmac_sim::SeedStream;
//!
//! // Fig. 3 workload at α* = 0.55 for 20 links.
//! let mut arrivals = BurstUniform::symmetric(20, 0.55, 6)?;
//! assert!((arrivals.mean(0.into()) - 3.5 * 0.55).abs() < 1e-12);
//! let mut rng = SeedStream::new(1).rng(0);
//! let mut buf = Vec::new();
//! arrivals.sample(&mut rng, &mut buf);
//! assert_eq!(buf.len(), 20);
//! assert!(buf.iter().all(|&a| a <= 6));
//! # Ok::<(), rtmac_model::ConfigError>(())
//! ```

use rand::Rng;
use rtmac_model::{ConfigError, LinkId};
use rtmac_sim::SimRng;

/// An interval-synchronous arrival process: one sample per interval yields
/// the packet count of every link.
pub trait ArrivalProcess: std::fmt::Debug + Send {
    /// Number of links.
    fn n_links(&self) -> usize;

    /// Samples the arrival vector `A(k)` for one interval into `out`
    /// (cleared and refilled; one entry per link).
    fn sample(&mut self, rng: &mut SimRng, out: &mut Vec<u32>);

    /// Mean arrivals per interval `λ_n`.
    fn mean(&self, link: LinkId) -> f64;

    /// The bound `A_max` on per-link arrivals in one interval.
    fn max_arrivals(&self) -> u32;
}

fn validate_probability(
    values: &[f64],
    to_error: impl Fn(usize, f64) -> ConfigError,
) -> Result<(), ConfigError> {
    if values.is_empty() {
        return Err(ConfigError::NoLinks);
    }
    for (link, &v) in values.iter().enumerate() {
        if !v.is_finite() || !(0.0..=1.0).contains(&v) {
            return Err(to_error(link, v));
        }
    }
    Ok(())
}

/// The paper's video-traffic model: link `n` receives `U{1..=burst_max}`
/// packets with probability `α_n` and 0 otherwise, so
/// `λ_n = α_n · (burst_max + 1) / 2`.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstUniform {
    alpha: Vec<f64>,
    burst_max: u32,
}

impl BurstUniform {
    /// Per-link burst probabilities with a common maximum burst size.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidArrivalRate`] if some
    /// `α_n ∉ [0, 1]`, [`ConfigError::NoLinks`] if empty, or
    /// [`ConfigError::InvalidParameter`] if `burst_max == 0`.
    pub fn new(alpha: Vec<f64>, burst_max: u32) -> Result<Self, ConfigError> {
        validate_probability(&alpha, |link, value| ConfigError::InvalidArrivalRate {
            link,
            value,
        })?;
        if burst_max == 0 {
            return Err(ConfigError::InvalidParameter {
                name: "burst_max",
                value: 0.0,
            });
        }
        Ok(BurstUniform { alpha, burst_max })
    }

    /// Every one of `n` links uses the same `α`.
    ///
    /// # Errors
    ///
    /// Same as [`BurstUniform::new`].
    pub fn symmetric(n: usize, alpha: f64, burst_max: u32) -> Result<Self, ConfigError> {
        Self::new(vec![alpha; n], burst_max)
    }

    /// The burst probability `α_n` of one link.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    #[must_use]
    pub fn alpha(&self, link: LinkId) -> f64 {
        self.alpha[link.index()]
    }
}

impl ArrivalProcess for BurstUniform {
    fn n_links(&self) -> usize {
        self.alpha.len()
    }

    fn sample(&mut self, rng: &mut SimRng, out: &mut Vec<u32>) {
        out.clear();
        for &a in &self.alpha {
            let burst = a > 0.0 && (a >= 1.0 || rng.random_bool(a));
            out.push(if burst {
                rng.random_range(1..=self.burst_max)
            } else {
                0
            });
        }
    }

    fn mean(&self, link: LinkId) -> f64 {
        self.alpha[link.index()] * f64::from(self.burst_max + 1) / 2.0
    }

    fn max_arrivals(&self) -> u32 {
        self.burst_max
    }
}

/// The paper's control-traffic model: one packet with probability `λ_n`,
/// zero otherwise.
#[derive(Debug, Clone, PartialEq)]
pub struct BernoulliArrivals {
    lambda: Vec<f64>,
}

impl BernoulliArrivals {
    /// Per-link arrival probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidArrivalRate`] if some
    /// `λ_n ∉ [0, 1]` or [`ConfigError::NoLinks`] if empty.
    pub fn new(lambda: Vec<f64>) -> Result<Self, ConfigError> {
        validate_probability(&lambda, |link, value| ConfigError::InvalidArrivalRate {
            link,
            value,
        })?;
        Ok(BernoulliArrivals { lambda })
    }

    /// Every one of `n` links uses the same `λ`.
    ///
    /// # Errors
    ///
    /// Same as [`BernoulliArrivals::new`].
    pub fn symmetric(n: usize, lambda: f64) -> Result<Self, ConfigError> {
        Self::new(vec![lambda; n])
    }
}

impl ArrivalProcess for BernoulliArrivals {
    fn n_links(&self) -> usize {
        self.lambda.len()
    }

    fn sample(&mut self, rng: &mut SimRng, out: &mut Vec<u32>) {
        out.clear();
        for &l in &self.lambda {
            let hit = l > 0.0 && (l >= 1.0 || rng.random_bool(l));
            out.push(u32::from(hit));
        }
    }

    fn mean(&self, link: LinkId) -> f64 {
        self.lambda[link.index()]
    }

    fn max_arrivals(&self) -> u32 {
        1
    }
}

/// Deterministic arrivals: link `n` always receives `counts[n]` packets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstantArrivals {
    counts: Vec<u32>,
}

impl ConstantArrivals {
    /// Fixed per-link counts.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::NoLinks`] if empty.
    pub fn new(counts: Vec<u32>) -> Result<Self, ConfigError> {
        if counts.is_empty() {
            return Err(ConfigError::NoLinks);
        }
        Ok(ConstantArrivals { counts })
    }

    /// Every one of `n` links receives exactly one packet per interval —
    /// the classic setting where timely-throughput equals delivery ratio.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::NoLinks`] if `n == 0`.
    pub fn one_each(n: usize) -> Result<Self, ConfigError> {
        Self::new(vec![1; n])
    }
}

impl ArrivalProcess for ConstantArrivals {
    fn n_links(&self) -> usize {
        self.counts.len()
    }

    fn sample(&mut self, _rng: &mut SimRng, out: &mut Vec<u32>) {
        out.clear();
        out.extend_from_slice(&self.counts);
    }

    fn mean(&self, link: LinkId) -> f64 {
        f64::from(self.counts[link.index()])
    }

    fn max_arrivals(&self) -> u32 {
        self.counts.iter().copied().max().unwrap_or(0)
    }
}

/// Poisson(λ_n) counts truncated at `a_max` (keeping the paper's bounded-
/// arrivals assumption).
#[derive(Debug, Clone, PartialEq)]
pub struct TruncatedPoisson {
    lambda: Vec<f64>,
    a_max: u32,
}

impl TruncatedPoisson {
    /// Per-link rates with a common truncation bound.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidArrivalRate`] for negative or
    /// non-finite rates, [`ConfigError::NoLinks`] if empty, or
    /// [`ConfigError::InvalidParameter`] if `a_max == 0`.
    pub fn new(lambda: Vec<f64>, a_max: u32) -> Result<Self, ConfigError> {
        if lambda.is_empty() {
            return Err(ConfigError::NoLinks);
        }
        for (link, &l) in lambda.iter().enumerate() {
            if !l.is_finite() || l < 0.0 {
                return Err(ConfigError::InvalidArrivalRate { link, value: l });
            }
        }
        if a_max == 0 {
            return Err(ConfigError::InvalidParameter {
                name: "a_max",
                value: 0.0,
            });
        }
        Ok(TruncatedPoisson { lambda, a_max })
    }

    /// Samples one (untruncated-then-clipped) Poisson count by inversion.
    fn sample_one(lambda: f64, a_max: u32, rng: &mut SimRng) -> u32 {
        if lambda == 0.0 {
            return 0;
        }
        // Knuth's product method is fine for the small λ used here.
        let l = (-lambda).exp();
        let mut k = 0u32;
        let mut p = 1.0;
        loop {
            p *= rng.random_range(0.0..1.0);
            if p <= l || k >= a_max {
                return k.min(a_max);
            }
            k += 1;
        }
    }
}

impl ArrivalProcess for TruncatedPoisson {
    fn n_links(&self) -> usize {
        self.lambda.len()
    }

    fn sample(&mut self, rng: &mut SimRng, out: &mut Vec<u32>) {
        out.clear();
        for &l in &self.lambda {
            out.push(Self::sample_one(l, self.a_max, rng));
        }
    }

    fn mean(&self, link: LinkId) -> f64 {
        // Mean of the truncated distribution; for λ ≪ a_max it is ≈ λ.
        let lambda = self.lambda[link.index()];
        if lambda == 0.0 {
            return 0.0;
        }
        let mut mean = 0.0;
        let mut p = (-lambda).exp();
        let mut tail = 1.0 - p;
        for k in 1..=self.a_max {
            p *= lambda / f64::from(k);
            if k < self.a_max {
                mean += f64::from(k) * p;
                tail -= p;
            } else {
                // all remaining mass collapses onto a_max
                mean += f64::from(k) * tail;
            }
        }
        mean
    }

    fn max_arrivals(&self) -> u32 {
        self.a_max
    }
}

/// A common-shock mixture: with probability `shock`, *every* link receives
/// `shock_count` packets; otherwise links draw independently from a base
/// process. Demonstrates the paper's allowance for correlated per-interval
/// arrivals.
#[derive(Debug)]
pub struct CorrelatedShock<P> {
    base: P,
    shock: f64,
    shock_count: u32,
}

impl<P: ArrivalProcess> CorrelatedShock<P> {
    /// Wraps `base` with a synchronized shock.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidParameter`] if `shock ∉ [0, 1]` or
    /// `shock_count == 0`.
    pub fn new(base: P, shock: f64, shock_count: u32) -> Result<Self, ConfigError> {
        if !shock.is_finite() || !(0.0..=1.0).contains(&shock) {
            return Err(ConfigError::InvalidParameter {
                name: "shock probability",
                value: shock,
            });
        }
        if shock_count == 0 {
            return Err(ConfigError::InvalidParameter {
                name: "shock count",
                value: 0.0,
            });
        }
        Ok(CorrelatedShock {
            base,
            shock,
            shock_count,
        })
    }
}

impl<P: ArrivalProcess> ArrivalProcess for CorrelatedShock<P> {
    fn n_links(&self) -> usize {
        self.base.n_links()
    }

    fn sample(&mut self, rng: &mut SimRng, out: &mut Vec<u32>) {
        if self.shock > 0.0 && (self.shock >= 1.0 || rng.random_bool(self.shock)) {
            out.clear();
            out.resize(self.base.n_links(), self.shock_count);
        } else {
            self.base.sample(rng, out);
        }
    }

    fn mean(&self, link: LinkId) -> f64 {
        self.shock * f64::from(self.shock_count) + (1.0 - self.shock) * self.base.mean(link)
    }

    fn max_arrivals(&self) -> u32 {
        self.base.max_arrivals().max(self.shock_count)
    }
}

/// A two-state Markov-modulated arrival process: each link independently
/// alternates between a Calm and a Busy phase with per-interval switching
/// probabilities, drawing its packet count from a phase-specific
/// [`BurstUniform`]-style law. Models the scene-change burstiness of real
/// video sources, which the paper's i.i.d. model smooths away — used by
/// robustness tests and ablations, not by the figure reproductions.
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovModulated {
    calm_alpha: f64,
    busy_alpha: f64,
    calm_to_busy: f64,
    busy_to_calm: f64,
    burst_max: u32,
    in_busy: Vec<bool>,
}

impl MarkovModulated {
    /// Creates the process for `n` links; every link starts Calm.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if a probability is out of `[0, 1]` (the
    /// switching probabilities must be in `(0, 1)` so both phases recur),
    /// `burst_max == 0`, or `n == 0`.
    pub fn new(
        n: usize,
        calm_alpha: f64,
        busy_alpha: f64,
        calm_to_busy: f64,
        busy_to_calm: f64,
        burst_max: u32,
    ) -> Result<Self, ConfigError> {
        if n == 0 {
            return Err(ConfigError::NoLinks);
        }
        for (value, name) in [(calm_alpha, "calm alpha"), (busy_alpha, "busy alpha")] {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(ConfigError::InvalidParameter { name, value });
            }
        }
        for (value, name) in [
            (calm_to_busy, "calm-to-busy probability"),
            (busy_to_calm, "busy-to-calm probability"),
        ] {
            if !value.is_finite() || value <= 0.0 || value >= 1.0 {
                return Err(ConfigError::InvalidParameter { name, value });
            }
        }
        if burst_max == 0 {
            return Err(ConfigError::InvalidParameter {
                name: "burst_max",
                value: 0.0,
            });
        }
        Ok(MarkovModulated {
            calm_alpha,
            busy_alpha,
            calm_to_busy,
            busy_to_calm,
            burst_max,
            in_busy: vec![false; n],
        })
    }

    /// Stationary probability of the Busy phase.
    #[must_use]
    pub fn stationary_busy(&self) -> f64 {
        self.calm_to_busy / (self.calm_to_busy + self.busy_to_calm)
    }
}

impl ArrivalProcess for MarkovModulated {
    fn n_links(&self) -> usize {
        self.in_busy.len()
    }

    fn sample(&mut self, rng: &mut SimRng, out: &mut Vec<u32>) {
        out.clear();
        for i in 0..self.in_busy.len() {
            let alpha = if self.in_busy[i] {
                self.busy_alpha
            } else {
                self.calm_alpha
            };
            let burst = alpha > 0.0 && (alpha >= 1.0 || rng.random_bool(alpha));
            out.push(if burst {
                rng.random_range(1..=self.burst_max)
            } else {
                0
            });
            // Phase transition for the next interval.
            let flip = if self.in_busy[i] {
                rng.random_bool(self.busy_to_calm)
            } else {
                rng.random_bool(self.calm_to_busy)
            };
            if flip {
                self.in_busy[i] = !self.in_busy[i];
            }
        }
    }

    fn mean(&self, link: LinkId) -> f64 {
        let _ = link;
        let b = self.stationary_busy();
        let alpha = b * self.busy_alpha + (1.0 - b) * self.calm_alpha;
        alpha * f64::from(self.burst_max + 1) / 2.0
    }

    fn max_arrivals(&self) -> u32 {
        self.burst_max
    }
}

/// Replays a recorded arrival matrix, cycling when it reaches the end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceReplay {
    rows: Vec<Vec<u32>>,
    cursor: usize,
}

impl TraceReplay {
    /// Creates a replayer over `rows` (each row is one interval's arrival
    /// vector).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::NoLinks`] if `rows` is empty or the first row
    /// is empty, and [`ConfigError::LengthMismatch`] if rows disagree in
    /// length.
    pub fn new(rows: Vec<Vec<u32>>) -> Result<Self, ConfigError> {
        let n = rows.first().map_or(0, Vec::len);
        if n == 0 {
            return Err(ConfigError::NoLinks);
        }
        for row in &rows {
            if row.len() != n {
                return Err(ConfigError::LengthMismatch {
                    what: "trace rows",
                    expected: n,
                    actual: row.len(),
                });
            }
        }
        Ok(TraceReplay { rows, cursor: 0 })
    }
}

impl ArrivalProcess for TraceReplay {
    fn n_links(&self) -> usize {
        self.rows[0].len()
    }

    fn sample(&mut self, _rng: &mut SimRng, out: &mut Vec<u32>) {
        out.clear();
        out.extend_from_slice(&self.rows[self.cursor]);
        self.cursor = (self.cursor + 1) % self.rows.len();
    }

    fn mean(&self, link: LinkId) -> f64 {
        let total: u64 = self.rows.iter().map(|r| u64::from(r[link.index()])).sum();
        total as f64 / self.rows.len() as f64
    }

    fn max_arrivals(&self) -> u32 {
        self.rows
            .iter()
            .flat_map(|r| r.iter().copied())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtmac_sim::SeedStream;

    fn empirical_mean(p: &mut dyn ArrivalProcess, link: usize, trials: usize, seed: u64) -> f64 {
        let mut rng = SeedStream::new(seed).rng(0);
        let mut buf = Vec::new();
        let mut total = 0u64;
        for _ in 0..trials {
            p.sample(&mut rng, &mut buf);
            total += u64::from(buf[link]);
        }
        total as f64 / trials as f64
    }

    #[test]
    fn burst_uniform_mean_is_alpha_times_midpoint() {
        let mut p = BurstUniform::symmetric(3, 0.6, 6).unwrap();
        assert!((p.mean(0.into()) - 2.1).abs() < 1e-12);
        assert_eq!(p.alpha(2.into()), 0.6);
        let m = empirical_mean(&mut p, 1, 100_000, 11);
        assert!((m - 2.1).abs() < 0.05, "empirical {m}");
        assert_eq!(p.max_arrivals(), 6);
    }

    #[test]
    fn burst_uniform_respects_bounds() {
        let mut p = BurstUniform::symmetric(2, 1.0, 4).unwrap();
        let mut rng = SeedStream::new(2).rng(0);
        let mut buf = Vec::new();
        for _ in 0..1000 {
            p.sample(&mut rng, &mut buf);
            assert!(buf.iter().all(|&a| (1..=4).contains(&a)));
        }
    }

    #[test]
    fn burst_uniform_validates() {
        assert!(BurstUniform::new(vec![], 6).is_err());
        assert!(BurstUniform::new(vec![1.5], 6).is_err());
        assert!(BurstUniform::new(vec![0.5], 0).is_err());
    }

    #[test]
    fn bernoulli_mean_matches() {
        let mut p = BernoulliArrivals::symmetric(2, 0.78).unwrap();
        let m = empirical_mean(&mut p, 0, 100_000, 5);
        assert!((m - 0.78).abs() < 0.01, "empirical {m}");
        assert_eq!(p.max_arrivals(), 1);
        assert!(BernoulliArrivals::new(vec![-0.1]).is_err());
    }

    #[test]
    fn constant_is_deterministic() {
        let mut p = ConstantArrivals::new(vec![2, 0, 1]).unwrap();
        let mut rng = SeedStream::new(0).rng(0);
        let mut buf = Vec::new();
        p.sample(&mut rng, &mut buf);
        assert_eq!(buf, [2, 0, 1]);
        assert_eq!(p.mean(0.into()), 2.0);
        assert_eq!(p.max_arrivals(), 2);
        let one = ConstantArrivals::one_each(4).unwrap();
        assert_eq!(one.mean(3.into()), 1.0);
    }

    #[test]
    fn truncated_poisson_mean_and_bound() {
        let mut p = TruncatedPoisson::new(vec![1.2], 10).unwrap();
        let analytic = p.mean(0.into());
        // With a_max = 10 and λ = 1.2 the truncation is negligible.
        assert!((analytic - 1.2).abs() < 1e-3, "analytic mean {analytic}");
        let m = empirical_mean(&mut p, 0, 100_000, 9);
        assert!((m - analytic).abs() < 0.02, "empirical {m} vs {analytic}");

        // Harsh truncation actually binds.
        let mut hard = TruncatedPoisson::new(vec![5.0], 2).unwrap();
        let mut rng = SeedStream::new(1).rng(0);
        let mut buf = Vec::new();
        for _ in 0..1000 {
            hard.sample(&mut rng, &mut buf);
            assert!(buf[0] <= 2);
        }
        assert!(hard.mean(0.into()) < 2.0);
    }

    #[test]
    fn correlated_shock_correlates_links() {
        let base = BernoulliArrivals::symmetric(2, 0.5).unwrap();
        let mut p = CorrelatedShock::new(base, 0.5, 3).unwrap();
        let mut rng = SeedStream::new(4).rng(0);
        let mut buf = Vec::new();
        let mut both_shocked = 0;
        let trials = 20_000;
        for _ in 0..trials {
            p.sample(&mut rng, &mut buf);
            if buf[0] == 3 {
                assert_eq!(buf[1], 3, "shock must hit all links together");
                both_shocked += 1;
            }
        }
        let rate = f64::from(both_shocked) / trials as f64;
        assert!((rate - 0.5).abs() < 0.02, "shock rate {rate}");
        // mean = 0.5·3 + 0.5·0.5 = 1.75
        assert!((p.mean(0.into()) - 1.75).abs() < 1e-12);
        assert_eq!(p.max_arrivals(), 3);
    }

    #[test]
    fn markov_modulated_mean_matches_stationary_mix() {
        // Stationary busy = 0.1/(0.1+0.3) = 0.25; alpha = 0.25·0.9 + 0.75·0.2
        // = 0.375; mean = 0.375·3.5 = 1.3125.
        let mut p = MarkovModulated::new(2, 0.2, 0.9, 0.1, 0.3, 6).unwrap();
        assert!((p.stationary_busy() - 0.25).abs() < 1e-12);
        assert!((p.mean(0.into()) - 1.3125).abs() < 1e-12);
        let m = empirical_mean(&mut p, 0, 200_000, 21);
        assert!((m - 1.3125).abs() < 0.03, "empirical {m}");
        assert_eq!(p.max_arrivals(), 6);
    }

    #[test]
    fn markov_modulated_is_temporally_correlated() {
        // With sticky phases, interval counts must be positively
        // autocorrelated: P(next nonzero | current nonzero) should exceed
        // the marginal nonzero rate.
        let mut p = MarkovModulated::new(1, 0.05, 0.95, 0.02, 0.02, 6).unwrap();
        let mut rng = SeedStream::new(8).rng(0);
        let mut buf = Vec::new();
        let mut prev_nonzero = false;
        let (mut nn, mut n_after_n, mut total_n) = (0u32, 0u32, 0u32);
        for _ in 0..100_000 {
            p.sample(&mut rng, &mut buf);
            let nonzero = buf[0] > 0;
            if nonzero {
                total_n += 1;
            }
            if prev_nonzero {
                nn += 1;
                if nonzero {
                    n_after_n += 1;
                }
            }
            prev_nonzero = nonzero;
        }
        let conditional = f64::from(n_after_n) / f64::from(nn);
        let marginal = f64::from(total_n) / 100_000.0;
        assert!(
            conditional > marginal + 0.2,
            "conditional {conditional} vs marginal {marginal}"
        );
    }

    #[test]
    fn markov_modulated_validates() {
        assert!(MarkovModulated::new(0, 0.2, 0.9, 0.1, 0.3, 6).is_err());
        assert!(MarkovModulated::new(1, 1.2, 0.9, 0.1, 0.3, 6).is_err());
        assert!(MarkovModulated::new(1, 0.2, 0.9, 0.0, 0.3, 6).is_err());
        assert!(MarkovModulated::new(1, 0.2, 0.9, 0.1, 1.0, 6).is_err());
        assert!(MarkovModulated::new(1, 0.2, 0.9, 0.1, 0.3, 0).is_err());
    }

    #[test]
    fn trace_replay_cycles() {
        let mut p = TraceReplay::new(vec![vec![1, 0], vec![2, 2]]).unwrap();
        let mut rng = SeedStream::new(0).rng(0);
        let mut buf = Vec::new();
        p.sample(&mut rng, &mut buf);
        assert_eq!(buf, [1, 0]);
        p.sample(&mut rng, &mut buf);
        assert_eq!(buf, [2, 2]);
        p.sample(&mut rng, &mut buf);
        assert_eq!(buf, [1, 0]); // wrapped
        assert_eq!(p.mean(0.into()), 1.5);
        assert_eq!(p.max_arrivals(), 2);
        assert!(TraceReplay::new(vec![]).is_err());
        assert!(TraceReplay::new(vec![vec![1], vec![1, 2]]).is_err());
    }
}
