//! Deterministic interleaving checking of the work-stealing
//! [`Runner`] — the loom-style companion to the DP-engine
//! checkers in this crate.
//!
//! The runner's shared state (job, slot and range locks plus the progress
//! counter) goes through the [`rtmac::sync`] facade, whose
//! [`model`](rtmac::sync::model) mode serializes worker threads on a
//! cooperative scheduler and records every scheduling decision. This
//! module drives that mode two ways:
//!
//! * [`explore`] — depth-first search over interleavings with a CHESS-style
//!   *preemption bound*: every schedule that switches threads at most
//!   `preemption_bound` times at points where the running thread could
//!   have continued is explored exhaustively (plus all forced switches).
//!   Empirically almost all real schedulers' bugs are found with ≤ 2
//!   preemptions, and the bound is what keeps exhaustive search tractable.
//! * [`explore_random`] — a PCT-style randomized scheduler (random thread
//!   priorities plus `PCT_CHANGE_POINTS` random priority-change points per
//!   run) for configurations whose bounded-DFS space is too large.
//!
//! Four properties are asserted on **every** explored interleaving:
//!
//! 1. **deadlock-freedom** — the model scheduler never reaches a state
//!    with unfinished, unrunnable threads (and the run stays within its
//!    op budget — the livelock analogue);
//! 2. **exactly-once retirement** — every job is claimed once, executed
//!    once, and the progress counter retires exactly `jobs` completions;
//! 3. **slot write-once** — every result slot is written exactly once;
//! 4. **output determinism** — the returned vector equals the 1-worker
//!    reference, so the steal schedule cannot leak into results.
//!
//! [`explore_panic`] additionally checks the runner's panic contract
//! under every interleaving: a job panic must surface (never deadlock,
//! never be swallowed) while every *other* job still executes.
//!
//! Violations come back as a [`SchedCounterexample`] carrying the exact
//! decision schedule, replayable via [`replay_schedule`]. The mutation
//! suite in `crates/verify/tests/sched_mutation.rs` runs seeded
//! concurrency faults (dropped range lock, double steal, missing
//! increment, lock held across the steal loop) through the same explorer
//! and convicts each one.

use rand::Rng;
use rtmac::runner::{Runner, SchedProbe};
use rtmac::sync::model::{run_model, RunTrace, SchedPolicy};
use rtmac_sim::SeedStream;

// lint: allow(raw-sync-primitive) — checker instrumentation must stay
// invisible to the model scheduler: facade atomics would add scheduling
// points and change the very interleaving space being explored, so the
// observation counters use raw std atomics on purpose.
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of priority-change points per [`explore_random`] run (the `d`
/// of the PCT scheduler: a run with `d` change points hits any bug of
/// preemption depth `d` with probability ≥ 1/(n·k^(d-1))).
pub const PCT_CHANGE_POINTS: usize = 3;

/// A bounded Runner configuration for the interleaving checker.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Worker threads in the pool (≥ 2 for the parallel path).
    pub workers: usize,
    /// Jobs to map.
    pub jobs: usize,
    /// CHESS preemption bound for [`explore`].
    pub preemption_bound: usize,
    /// Abort the search after this many executions (safety valve; the
    /// returned stats flag incompleteness).
    pub max_executions: u64,
    /// Per-execution scheduling-point budget (livelock guard).
    pub max_ops: u64,
}

impl SchedConfig {
    /// A config with the default execution and op budgets.
    #[must_use]
    pub fn new(workers: usize, jobs: usize, preemption_bound: usize) -> Self {
        SchedConfig {
            workers,
            jobs,
            preemption_bound,
            max_executions: 2_000_000,
            max_ops: 100_000,
        }
    }
}

/// The four model-checked properties.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedProperty {
    /// No reachable state leaves unfinished threads unrunnable (includes
    /// the op-budget livelock guard).
    DeadlockFree,
    /// Every job claimed and executed exactly once, with the progress
    /// counter retiring every completion.
    ExactlyOnce,
    /// Every result slot written exactly once.
    SlotWriteOnce,
    /// The output equals the 1-worker reference on every interleaving.
    OutputDeterminism,
}

impl std::fmt::Display for SchedProperty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SchedProperty::DeadlockFree => "deadlock-free",
            SchedProperty::ExactlyOnce => "exactly-once",
            SchedProperty::SlotWriteOnce => "slot-write-once",
            SchedProperty::OutputDeterminism => "output-determinism",
        })
    }
}

/// A violating interleaving: the property, what went wrong, and the
/// scheduling decisions that reach it.
#[derive(Debug, Clone)]
pub struct SchedCounterexample {
    /// The violated property.
    pub property: SchedProperty,
    /// Human-readable description of the violation.
    pub detail: String,
    /// The thread chosen at each scheduling decision, in order; replay
    /// with [`replay_schedule`].
    pub schedule: Vec<usize>,
    /// Workers in the violating configuration.
    pub workers: usize,
    /// Jobs in the violating configuration.
    pub jobs: usize,
}

impl std::fmt::Display for SchedCounterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "sched violation: {} (workers={} jobs={})",
            self.property, self.workers, self.jobs
        )?;
        writeln!(f, "  {}", self.detail)?;
        write!(f, "  schedule:")?;
        for c in &self.schedule {
            write!(f, " {c}")?;
        }
        Ok(())
    }
}

/// Search statistics for one exploration.
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedStats {
    /// Interleavings executed.
    pub executions: u64,
    /// Scheduling decisions taken across all executions.
    pub decisions: u64,
    /// Deepest decision sequence seen.
    pub max_depth: usize,
    /// False when the search hit `max_executions` before draining its
    /// frontier.
    pub complete: bool,
}

/// Something the checker can run a bounded mapping on: the real
/// [`Runner`] ([`RunnerSubject`]) or a seeded-fault mirror from the
/// mutation suite.
pub trait SchedSubject: Sync {
    /// Maps `f` over `0..jobs` with `workers` workers, reporting progress
    /// and probe events like [`Runner::map_probed`], and returns the
    /// results in input order.
    fn run(
        &self,
        workers: usize,
        jobs: usize,
        f: &(dyn Fn(usize) -> usize + Sync),
        on_progress: &(dyn Fn(usize, usize) + Sync),
        probe: &dyn SchedProbe,
    ) -> Vec<usize>;
}

/// The real work-stealing [`Runner`] as a checking subject.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunnerSubject;

impl SchedSubject for RunnerSubject {
    fn run(
        &self,
        workers: usize,
        jobs: usize,
        f: &(dyn Fn(usize) -> usize + Sync),
        on_progress: &(dyn Fn(usize, usize) + Sync),
        probe: &dyn SchedProbe,
    ) -> Vec<usize> {
        Runner::new(workers).map_probed((0..jobs).collect(), f, on_progress, probe)
    }
}

/// The job function under check: cheap, pure, and injective on indices so
/// a misrouted result is visible in the output.
fn job_value(i: usize) -> usize {
    i.wrapping_mul(31) ^ 7
}

/// Per-execution observations, recorded through raw (model-invisible)
/// atomics.
struct Obs {
    claimed: Vec<AtomicUsize>,
    executed: Vec<AtomicUsize>,
    written: Vec<AtomicUsize>,
    progress_high: AtomicUsize,
    progress_calls: AtomicUsize,
    bad_total: AtomicUsize,
}

impl Obs {
    fn new(jobs: usize) -> Self {
        let zeros = |n: usize| (0..n).map(|_| AtomicUsize::new(0)).collect();
        Obs {
            claimed: zeros(jobs),
            executed: zeros(jobs),
            written: zeros(jobs),
            progress_high: AtomicUsize::new(0),
            progress_calls: AtomicUsize::new(0),
            bad_total: AtomicUsize::new(0),
        }
    }
}

impl SchedProbe for Obs {
    fn claimed(&self, _worker: usize, index: usize) {
        self.claimed[index].fetch_add(1, Ordering::SeqCst);
    }
    fn slot_written(&self, _worker: usize, index: usize) {
        self.written[index].fetch_add(1, Ordering::SeqCst);
    }
}

/// What a correct execution is expected to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expectation {
    /// Run to completion with the reference output.
    Normal,
    /// The job at this index panics; the panic must surface and every
    /// other job must still run.
    PanicAt(usize),
}

/// The panic message used by [`explore_panic`]'s poisoned job.
const PANIC_MARKER: &str = "sched-model: seeded job panic";

/// Runs `subject` once under `policy` and checks all four properties.
/// Returns the trace plus the violation, if any.
fn run_one(
    subject: &dyn SchedSubject,
    cfg: &SchedConfig,
    policy: SchedPolicy,
    expect: Expectation,
) -> (RunTrace, Option<(SchedProperty, String)>) {
    let obs = Obs::new(cfg.jobs);
    let jobs = cfg.jobs;
    let f = |i: usize| {
        obs.executed[i].fetch_add(1, Ordering::SeqCst);
        if expect == Expectation::PanicAt(i) {
            // lint: allow(panic-macro) — this panic IS the test payload:
            // explore_panic seeds it to model-check the runner's
            // panic-propagation contract; run_model catches it.
            panic!("{PANIC_MARKER}");
        }
        job_value(i)
    };
    let on_progress = |done: usize, total: usize| {
        if total != jobs {
            obs.bad_total.fetch_add(1, Ordering::SeqCst);
        }
        obs.progress_high.fetch_max(done, Ordering::SeqCst);
        obs.progress_calls.fetch_add(1, Ordering::SeqCst);
    };
    let mut output = None;
    let trace = run_model(policy, cfg.max_ops, || {
        output = Some(subject.run(cfg.workers, jobs, &f, &on_progress, &obs));
    });
    let violation = check_execution(cfg, &trace, &obs, output.as_deref(), expect);
    (trace, violation)
}

fn check_execution(
    cfg: &SchedConfig,
    trace: &RunTrace,
    obs: &Obs,
    output: Option<&[usize]>,
    expect: Expectation,
) -> Option<(SchedProperty, String)> {
    let n = cfg.jobs;
    if let Some(d) = &trace.deadlock {
        return Some((SchedProperty::DeadlockFree, d.clone()));
    }
    if trace.ops_exceeded {
        return Some((
            SchedProperty::DeadlockFree,
            format!("op budget ({}) exceeded — possible livelock", cfg.max_ops),
        ));
    }
    let panicking = match expect {
        Expectation::Normal => {
            if let Some(p) = &trace.panic {
                return Some((
                    SchedProperty::ExactlyOnce,
                    format!("unexpected panic during execution: {p}"),
                ));
            }
            None
        }
        Expectation::PanicAt(i) => match &trace.panic {
            Some(p) if p.contains(PANIC_MARKER) => Some(i),
            Some(p) => {
                return Some((
                    SchedProperty::ExactlyOnce,
                    format!("a different panic surfaced: {p}"),
                ))
            }
            None => {
                return Some((
                    SchedProperty::OutputDeterminism,
                    format!("the seeded panic in job {i} was swallowed"),
                ))
            }
        },
    };
    for i in 0..n {
        let claims = obs.claimed[i].load(Ordering::SeqCst);
        let execs = obs.executed[i].load(Ordering::SeqCst);
        if claims != 1 || execs != 1 {
            return Some((
                SchedProperty::ExactlyOnce,
                format!("job {i} claimed {claims} time(s), executed {execs} time(s)"),
            ));
        }
    }
    let retired = obs.progress_high.load(Ordering::SeqCst);
    let calls = obs.progress_calls.load(Ordering::SeqCst);
    let expected_retired = n - usize::from(panicking.is_some());
    if retired != expected_retired || calls != expected_retired {
        return Some((
            SchedProperty::ExactlyOnce,
            format!(
                "progress counter retired {retired}/{expected_retired} \
                 with {calls} callback(s)"
            ),
        ));
    }
    if obs.bad_total.load(Ordering::SeqCst) != 0 {
        return Some((
            SchedProperty::ExactlyOnce,
            "progress callback saw a wrong total".to_string(),
        ));
    }
    for i in 0..n {
        let writes = obs.written[i].load(Ordering::SeqCst);
        let expected = usize::from(panicking != Some(i));
        if writes != expected {
            return Some((
                SchedProperty::SlotWriteOnce,
                format!("slot {i} written {writes} time(s), expected {expected}"),
            ));
        }
    }
    if panicking.is_none() {
        let reference: Vec<usize> = (0..n).map(job_value).collect();
        match output {
            Some(out) if out == reference => {}
            Some(out) => {
                let at = (0..n).find(|&i| out.get(i) != Some(&reference[i]));
                return Some((
                    SchedProperty::OutputDeterminism,
                    format!(
                        "output diverges from the 1-worker reference \
                         (first difference at index {at:?})"
                    ),
                ));
            }
            None => {
                return Some((
                    SchedProperty::OutputDeterminism,
                    "the mapping returned no output".to_string(),
                ));
            }
        }
    }
    None
}

fn counterexample(
    cfg: &SchedConfig,
    trace: &RunTrace,
    property: SchedProperty,
    detail: String,
) -> Box<SchedCounterexample> {
    Box::new(SchedCounterexample {
        property,
        detail,
        schedule: trace.decisions.iter().map(|d| d.chosen).collect(),
        workers: cfg.workers,
        jobs: cfg.jobs,
    })
}

/// One DFS frame: a decision point with its untried alternatives.
struct Frame {
    enabled: Vec<usize>,
    prev: Option<usize>,
    /// The choice the current prefix takes at this depth.
    taken: usize,
    /// Alternatives not yet explored (descending, popped from the back).
    pending: Vec<usize>,
    /// Preemptions in the prefix up to and including `taken`.
    cum_preemptions: usize,
}

fn is_preemptive(prev: Option<usize>, enabled: &[usize], choice: usize) -> bool {
    prev.is_some_and(|p| p != choice && enabled.contains(&p))
}

/// Exhaustive bounded-preemption DFS over `subject`'s interleavings,
/// checking all four properties on every execution.
///
/// # Errors
///
/// Returns the first violating interleaving found.
pub fn explore(
    subject: &dyn SchedSubject,
    cfg: &SchedConfig,
) -> Result<SchedStats, Box<SchedCounterexample>> {
    explore_with(subject, cfg, Expectation::Normal)
}

/// [`explore`], but with the job at index `jobs / 2` seeded to panic:
/// every interleaving must surface the panic, execute every other job,
/// and leave exactly the panicking slot unwritten.
///
/// # Errors
///
/// Returns the first interleaving that violates the panic contract.
pub fn explore_panic(
    subject: &dyn SchedSubject,
    cfg: &SchedConfig,
) -> Result<SchedStats, Box<SchedCounterexample>> {
    explore_with(subject, cfg, Expectation::PanicAt(cfg.jobs / 2))
}

fn explore_with(
    subject: &dyn SchedSubject,
    cfg: &SchedConfig,
    expect: Expectation,
) -> Result<SchedStats, Box<SchedCounterexample>> {
    let mut stats = SchedStats {
        complete: true,
        ..SchedStats::default()
    };
    let mut stack: Vec<Frame> = Vec::new();
    let mut schedule: Vec<usize> = Vec::new();
    loop {
        let (trace, violation) =
            run_one(subject, cfg, SchedPolicy::Replay(schedule.clone()), expect);
        stats.executions += 1;
        stats.decisions += trace.decisions.len() as u64;
        stats.max_depth = stats.max_depth.max(trace.decisions.len());
        if let Some((property, detail)) = violation {
            return Err(counterexample(cfg, &trace, property, detail));
        }
        // Extend the stack with the decisions beyond the forced prefix.
        debug_assert!(trace.decisions.len() >= stack.len());
        for d in &trace.decisions[stack.len()..] {
            let before = stack.last().map_or(0, |f: &Frame| f.cum_preemptions);
            let mut pending: Vec<usize> = d
                .enabled
                .iter()
                .copied()
                .filter(|&t| t != d.chosen)
                .collect();
            // Pop from the back, explore ascending.
            pending.reverse();
            stack.push(Frame {
                enabled: d.enabled.clone(),
                prev: d.prev,
                taken: d.chosen,
                pending,
                cum_preemptions: before + usize::from(d.preemptive),
            });
        }
        if stats.executions >= cfg.max_executions {
            stats.complete = false;
            return Ok(stats);
        }
        // Backtrack to the deepest frame with an affordable alternative.
        loop {
            let before = if stack.len() >= 2 {
                stack[stack.len() - 2].cum_preemptions
            } else {
                0
            };
            let Some(top) = stack.last_mut() else {
                return Ok(stats);
            };
            let mut branched = false;
            while let Some(alt) = top.pending.pop() {
                let cost = usize::from(is_preemptive(top.prev, &top.enabled, alt));
                if before + cost <= cfg.preemption_bound {
                    top.taken = alt;
                    top.cum_preemptions = before + cost;
                    branched = true;
                    break;
                }
            }
            if branched {
                schedule = stack.iter().map(|f| f.taken).collect();
                break;
            }
            stack.pop();
        }
    }
}

/// PCT-style randomized exploration: `samples` runs with random thread
/// priorities and [`PCT_CHANGE_POINTS`] random priority-change points
/// each, checking all four properties per run. Deterministic in `seed`.
///
/// # Errors
///
/// Returns the first violating interleaving found.
pub fn explore_random(
    subject: &dyn SchedSubject,
    cfg: &SchedConfig,
    samples: u64,
    seed: u64,
) -> Result<SchedStats, Box<SchedCounterexample>> {
    let mut stats = SchedStats {
        complete: true,
        ..SchedStats::default()
    };
    let stream = SeedStream::new(seed);
    // Estimate the decision depth from a baseline run so change points
    // land inside real executions.
    let (baseline, violation) = run_one(subject, cfg, SchedPolicy::Fifo, Expectation::Normal);
    stats.executions += 1;
    stats.decisions += baseline.decisions.len() as u64;
    stats.max_depth = baseline.decisions.len();
    if let Some((property, detail)) = violation {
        return Err(counterexample(cfg, &baseline, property, detail));
    }
    let depth_hint = (baseline.decisions.len() as u64).max(4) * 2;
    for sample in 0..samples {
        let mut rng = stream.rng(sample);
        // Random priority permutation (Fisher-Yates over thread ids).
        let mut order: Vec<usize> = (0..cfg.workers).collect();
        for i in (1..order.len()).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        let change_points: Vec<u64> = (0..PCT_CHANGE_POINTS)
            .map(|_| rng.random_range(0..depth_hint))
            .collect();
        let policy = SchedPolicy::Priority {
            order,
            change_points,
        };
        let (trace, violation) = run_one(subject, cfg, policy, Expectation::Normal);
        stats.executions += 1;
        stats.decisions += trace.decisions.len() as u64;
        stats.max_depth = stats.max_depth.max(trace.decisions.len());
        if let Some((property, detail)) = violation {
            return Err(counterexample(cfg, &trace, property, detail));
        }
    }
    Ok(stats)
}

/// Re-runs one recorded schedule against `subject` and returns the
/// violation it reproduces, if any. The schedule must come from an
/// exploration of an identically-configured subject (the model asserts
/// divergence otherwise).
///
/// # Errors
///
/// Returns the reproduced violation.
pub fn replay_schedule(
    subject: &dyn SchedSubject,
    cfg: &SchedConfig,
    schedule: &[usize],
) -> Result<(), Box<SchedCounterexample>> {
    let (trace, violation) = run_one(
        subject,
        cfg,
        SchedPolicy::Replay(schedule.to_vec()),
        Expectation::Normal,
    );
    match violation {
        None => Ok(()),
        Some((property, detail)) => Err(counterexample(cfg, &trace, property, detail)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_exhaustive_exploration_is_clean_and_complete() {
        let cfg = SchedConfig::new(2, 3, 1);
        let stats = explore(&RunnerSubject, &cfg).expect("runner must pass");
        assert!(stats.complete);
        assert!(stats.executions > 1, "bound 1 must branch");
    }

    #[test]
    fn zero_preemption_bound_is_the_fifo_schedule_family() {
        let cfg = SchedConfig::new(2, 2, 0);
        let stats = explore(&RunnerSubject, &cfg).expect("runner must pass");
        assert!(stats.complete);
        // Even with no preemptions allowed, forced switches still branch
        // (which thread wins the initial ready gate, who acquires a
        // contended lock first), so more than one execution runs.
        assert!(stats.executions > 1);
    }

    #[test]
    fn replay_of_a_clean_schedule_is_clean() {
        let cfg = SchedConfig::new(2, 3, 0);
        assert!(replay_schedule(&RunnerSubject, &cfg, &[]).is_ok());
    }
}
