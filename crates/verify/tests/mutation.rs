//! Mutation testing of the checker itself: deliberately faulty subjects
//! must be caught, and every counterexample must be a replayable trace
//! that (a) reproduces the violation on a fresh faulty subject and
//! (b) passes cleanly on the real engine.

use rtmac_mac::{
    DpConfig, DpEngine, DpIntervalReport, FaultyDpEngine, FrameKind, MacTiming, PairCoins,
    RecoveryConfig, TraceEvent,
};
use rtmac_model::{AdjacentTransposition, Permutation};
use rtmac_phy::channel::{Bernoulli, LossModel};
use rtmac_phy::PhyProfile;
use rtmac_sim::{Nanos, SeedStream, SimRng};
use rtmac_verify::{check, replay, CheckConfig, Counterexample, EngineSubject, Property, Subject};

/// The seeded faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    /// Reports a collision that never happened.
    PhantomCollision,
    /// Credits link 0 with one extra delivery.
    DoubleCount,
    /// Applies an undrawn adjacent swap to σ without reporting it.
    SilentSwap,
    /// Reports (and applies) a swap at a pair that was never drawn.
    RogueSwap,
    /// Drops empty priority-claim frames from the trace.
    SuppressClaimTrace,
}

impl Fault {
    /// The property each fault must be convicted under.
    fn expected_property(self) -> Property {
        match self {
            Fault::PhantomCollision => Property::CollisionFreedom,
            Fault::DoubleCount => Property::ChannelConsistency,
            Fault::SilentSwap | Fault::RogueSwap => Property::SwapDiscipline,
            Fault::SuppressClaimTrace => Property::EmptyClaim,
        }
    }

    /// Swap faults need at least one undrawn pair, hence three links.
    fn config(self) -> CheckConfig {
        match self {
            Fault::SilentSwap | Fault::RogueSwap => CheckConfig::new(3, 1),
            _ => CheckConfig::new(2, 1),
        }
    }
}

/// The real engine wrapped with one seeded fault.
#[derive(Debug)]
struct FaultySubject {
    engine: DpEngine,
    fault: Fault,
}

impl FaultySubject {
    fn new(timing: MacTiming, n_links: usize, fault: Fault) -> Self {
        FaultySubject {
            engine: DpEngine::new(DpConfig::new(timing).with_trace(true), n_links),
            fault,
        }
    }

    fn for_config(cfg: &CheckConfig, fault: Fault) -> Self {
        FaultySubject::new(cfg.timing(), cfg.n, fault)
    }
}

impl Subject for FaultySubject {
    fn n_links(&self) -> usize {
        self.engine.n_links()
    }

    fn sigma(&self) -> &Permutation {
        self.engine.sigma()
    }

    fn set_sigma(&mut self, sigma: Permutation) {
        self.engine.set_sigma(sigma);
    }

    fn run_interval(
        &mut self,
        arrivals: &[u32],
        candidates: &[usize],
        coins: &[PairCoins],
        channel: &mut dyn LossModel,
        rng: &mut SimRng,
    ) -> DpIntervalReport {
        let mut report = self
            .engine
            .run_interval_with_coins(arrivals, candidates, coins, channel, rng);
        match self.fault {
            Fault::PhantomCollision => report.outcome.collisions += 1,
            Fault::DoubleCount => report.outcome.deliveries[0] += 1,
            Fault::SilentSwap => {
                let t = undrawn_swap(candidates);
                let mutated = self.engine.sigma().with(t);
                self.engine.set_sigma(mutated);
            }
            Fault::RogueSwap => {
                let t = undrawn_swap(candidates);
                let mutated = self.engine.sigma().with(t);
                self.engine.set_sigma(mutated);
                report.swaps.push(t);
            }
            Fault::SuppressClaimTrace => {
                report.trace.retain(|ev| {
                    !matches!(
                        ev,
                        TraceEvent::TxStart {
                            kind: FrameKind::Empty,
                            ..
                        }
                    )
                });
            }
        }
        report
    }
}

/// An adjacent pair that was not drawn this interval (assumes N = 3, so
/// the drawn set is a subset of {1, 2}).
fn undrawn_swap(candidates: &[usize]) -> AdjacentTransposition {
    let upper = if candidates.contains(&1) { 2 } else { 1 };
    AdjacentTransposition::new(upper)
}

/// Runs the full conviction pipeline for one fault: the checker catches
/// it, the trace round-trips through text, replays against a fresh
/// faulty subject to the same property, and is clean on the real engine.
fn convict(fault: Fault) {
    let cfg = fault.config();
    let mut subject = FaultySubject::for_config(&cfg, fault);
    let ce = check(&mut subject, &cfg).expect_err("the seeded fault must be caught");
    assert_eq!(
        ce.property,
        fault.expected_property(),
        "{fault:?} convicted under the wrong property: {}",
        ce.detail
    );
    assert!(
        !ce.steps.is_empty(),
        "a counterexample needs at least one step"
    );

    // The printed trace round-trips.
    let decoded = Counterexample::decode(&ce.encode()).expect("trace must parse back");
    assert_eq!(decoded, *ce);

    // Replay on a fresh faulty subject reproduces the same violation.
    let mut fresh = FaultySubject::for_config(&cfg, fault);
    let found =
        replay(&mut fresh, &decoded).expect_err("the trace must reproduce on the faulty subject");
    assert_eq!(found.property, ce.property);
    assert_eq!(
        found.steps.len(),
        ce.steps.len(),
        "must fail at the recorded step"
    );

    // The same trace is clean on the real engine: the fault is in the
    // mutant, not the protocol.
    let mut clean = EngineSubject::new(cfg.timing(), cfg.n);
    replay(&mut clean, &decoded).expect("the real engine must pass the trace");
}

/// A subject whose reordering is dead: it commits no swaps and pins σ to
/// whatever the checker set. Every per-interval safety property still
/// holds (σ changes by exactly the committed swaps — none), so only the
/// global sigma-liveness check can convict it.
#[derive(Debug)]
struct FrozenSigmaSubject {
    engine: DpEngine,
}

impl Subject for FrozenSigmaSubject {
    fn n_links(&self) -> usize {
        self.engine.n_links()
    }

    fn sigma(&self) -> &Permutation {
        self.engine.sigma()
    }

    fn set_sigma(&mut self, sigma: Permutation) {
        self.engine.set_sigma(sigma);
    }

    fn run_interval(
        &mut self,
        arrivals: &[u32],
        candidates: &[usize],
        coins: &[PairCoins],
        channel: &mut dyn LossModel,
        rng: &mut SimRng,
    ) -> DpIntervalReport {
        let before = self.engine.sigma().clone();
        let mut report = self
            .engine
            .run_interval_with_coins(arrivals, candidates, coins, channel, rng);
        report.swaps.clear();
        self.engine.set_sigma(before);
        report
    }
}

#[test]
fn frozen_sigma_breaks_liveness() {
    let cfg = CheckConfig::new(2, 1);
    let mut subject = FrozenSigmaSubject {
        engine: DpEngine::new(DpConfig::new(cfg.timing()).with_trace(true), cfg.n),
    };
    let ce = check(&mut subject, &cfg).expect_err("a frozen σ must be convicted");
    assert_eq!(ce.property, Property::SigmaLiveness, "{}", ce.detail);
    assert!(
        ce.detail.contains("unreachable"),
        "only the identity ordering is reachable: {}",
        ce.detail
    );
    // Liveness counterexamples have no failing step (the violation is the
    // absence of transitions) but still round-trip through the text format.
    assert!(ce.steps.is_empty());
    let decoded = Counterexample::decode(&ce.encode()).expect("trace must parse back");
    assert_eq!(decoded, *ce);
    // The real engine's reordering is live under the same configuration.
    let mut clean = EngineSubject::new(cfg.timing(), cfg.n);
    check(&mut clean, &cfg).expect("the real engine reaches every ordering");
}

/// The recovery mutant of the degraded engine: a link that never falls
/// back to the lowest priority. Conviction is behavioral — from a
/// corrupted (non-bijective) belief multiset, the self-stabilizing rule
/// must restore a bijection while the mutant provably never does.
#[test]
fn recovery_mutant_that_never_falls_back_is_convicted() {
    let timing = MacTiming::new(PhyProfile::ieee80211a(), Nanos::from_millis(2), 100);
    let reconverged_at = |recovery: RecoveryConfig| -> Option<usize> {
        let mut engine =
            FaultyDpEngine::new(DpConfig::new(timing.clone()), 2).with_recovery(recovery);
        engine.set_beliefs(vec![1, 1]); // duplicate priority beliefs
        let mut channel = Bernoulli::reliable(2);
        let mut rng = SeedStream::new(7).rng(0);
        for k in 0..400 {
            engine.run_interval(&[1, 1], &[0.5, 0.5], &mut channel, &mut rng);
            if engine.is_bijective() {
                return Some(k);
            }
        }
        None
    };
    assert!(
        reconverged_at(RecoveryConfig::new()).is_some(),
        "self-stabilization must heal the duplicate"
    );
    assert_eq!(
        reconverged_at(RecoveryConfig::disabled()),
        None,
        "with fallback disabled the duplicate must persist forever"
    );
}

#[test]
fn phantom_collision_is_caught() {
    convict(Fault::PhantomCollision);
}

#[test]
fn double_counted_delivery_is_caught() {
    convict(Fault::DoubleCount);
}

#[test]
fn silent_sigma_mutation_is_caught() {
    convict(Fault::SilentSwap);
}

#[test]
fn rogue_undrawn_swap_is_caught() {
    convict(Fault::RogueSwap);
}

#[test]
fn suppressed_claim_trace_is_caught() {
    convict(Fault::SuppressClaimTrace);
}
