//! # rtmac-net
//!
//! Runs the DP protocol over a real transport instead of the in-process
//! simulator — and proves, byte for byte, that nothing changed.
//!
//! The deterministic engine behind [`rtmac::Network`] decides everything a
//! link does from the shared scenario, the shared seed, and the claims it
//! hears. This crate lifts that engine behind the [`Transport`] trait and
//! runs one [`LinkNode`] per link as a *deterministic lockstep replica*:
//! every node steps an identical `Network` replica and broadcasts one
//! versioned, length-prefixed [`Frame`] per interval (claim / busy / idle,
//! carrying the interval index, the link's priority rank, and a debt-state
//! digest). Received frames are cross-checked against the local replica —
//! any divergence is detected as a [`NetError::Desync`] — and the ordered
//! stream of decoded frames forms the **decision trace**, fingerprinted
//! with the same FNV-1a scheme as the batched-kernel equivalence suite.
//!
//! ## The replay contract
//!
//! The same scenario and seed must produce the same decision-trace
//! fingerprint on every backend:
//!
//! * [`sim_trace`] — the pure simulator, no transport at all;
//! * [`LoopbackHub`] — in-memory channels carrying encoded frames;
//! * [`UdpTransport`] — real UDP sockets, one per link.
//!
//! [`replay_check`] pins the contract; `rtmac-verify replay` and the CI
//! `netd-smoke` job run it. What is allowed to differ across backends is
//! wall-clock timing only — the emulation harness measures it and reports
//! per-node deadline-miss rates next to the usual [`rtmac::RunReport`].
//! DESIGN.md §15 spells out the full contract and the wire format.
//!
//! ## Entry points
//!
//! * [`run_emulation`] — spawn every link of a scenario on one box
//!   (threads over loopback or UDP) and collect an [`EmulationReport`].
//! * [`netd`] — the `rtmac-netd` daemon: one OS process per link,
//!   exchanging frames over UDP. [`run_emulation_processes`] launches and
//!   harvests a whole fleet of them.
//! * [`scenario_file`] — the deployment config format: a scenario as a
//!   plain-text `key = value` file that `rtmac-netd --scenario` loads.
//!
//! ```
//! use rtmac_net::{run_emulation, sim_trace, EmulationConfig};
//!
//! let sc = rtmac::scenario::by_name("tiny").unwrap();
//! let report = run_emulation(&EmulationConfig::new(sc.clone(), 20)).unwrap();
//! assert_eq!(report.links, 3);
//! assert_eq!(report.run.intervals, 20);
//! // The replay contract: transport-free and loopback runs agree.
//! assert_eq!(report.fingerprint, sim_trace(&sc, 20).unwrap().fingerprint);
//! ```

pub mod emul;
pub mod frame;
pub mod netd;
pub mod node;
pub mod scenario_file;
pub mod sim;
pub mod trace;
pub mod transport;
pub mod udp;

mod error;

pub use emul::{
    default_netd_path, replay_check, run_emulation, run_emulation_processes, EmulationConfig,
    EmulationReport, ReplayVerdict, TransportKind,
};
pub use error::NetError;
pub use frame::{Activity, Beacon, CodecError, Frame, FrameKind};
pub use node::{LinkNode, NodeConfig, NodeReport};
pub use sim::{link_frame, scenario_digest, sim_trace, SimTrace};
pub use trace::{fnv1a, state_digest, DecisionTrace, FNV_OFFSET, FNV_PRIME};
pub use transport::{LoopbackHub, Transport};
pub use udp::UdpTransport;
