//! The many-link emulation harness and the replay contract check.
//!
//! [`run_emulation`] launches one [`LinkNode`] per link — as threads in
//! this process, over either the loopback or the UDP transport — runs the
//! deployment to completion, cross-checks every node's decision-trace
//! fingerprint, and folds the per-node wall-clock measurements into one
//! [`EmulationReport`]. [`run_emulation_processes`] does the same with one
//! real `rtmac-netd` process per link exchanging datagrams over localhost
//! sockets. [`replay_check`] is the contract in executable form: the same
//! scenario and seed through the sim, loopback, and (optionally) UDP
//! backends must produce the same fingerprint.

use std::io::Write;
use std::net::UdpSocket;
use std::path::{Path, PathBuf};
use std::time::Duration;

use rtmac::scenario::Scenario;
use rtmac::RunReport;

use crate::error::NetError;
use crate::node::{LinkNode, NodeConfig, NodeReport};
use crate::scenario_file;
use crate::sim::sim_trace;
use crate::transport::{LoopbackHub, Transport};
use crate::udp::UdpTransport;

/// Which transport backend an emulation runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// In-memory channels; delivery is lossless and ordered.
    Loopback,
    /// Real UDP sockets on localhost; delivery may drop, duplicate, or
    /// reorder (it rarely does on loopback interfaces).
    Udp,
}

impl TransportKind {
    /// The backend name used in reports and CLI flags.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::Loopback => "loopback",
            TransportKind::Udp => "udp",
        }
    }

    /// Parses a CLI flag value.
    ///
    /// # Example
    ///
    /// ```
    /// use rtmac_net::TransportKind;
    ///
    /// assert_eq!(TransportKind::parse("udp"), Some(TransportKind::Udp));
    /// assert_eq!(TransportKind::parse("smoke-signal"), None);
    /// ```
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "loopback" => Some(TransportKind::Loopback),
            "udp" => Some(TransportKind::Udp),
            _ => None,
        }
    }
}

/// Configuration for one emulation run.
#[derive(Debug, Clone)]
pub struct EmulationConfig {
    /// The shared scenario (its `links` field sets the deployment size).
    pub scenario: Scenario,
    /// Intervals to run.
    pub intervals: usize,
    /// Transport backend.
    pub transport: TransportKind,
    /// Pace each node at the scenario's real-time interval rate.
    pub realtime: bool,
    /// Per-node peer-silence budget (see [`NodeConfig::sync_timeout`]).
    pub sync_timeout: Duration,
}

impl EmulationConfig {
    /// A loopback, non-realtime config with the default 30 s sync timeout.
    ///
    /// # Example
    ///
    /// ```
    /// use rtmac_net::{EmulationConfig, TransportKind};
    ///
    /// let sc = rtmac::scenario::by_name("tiny").unwrap();
    /// let cfg = EmulationConfig::new(sc, 50);
    /// assert_eq!(cfg.transport, TransportKind::Loopback);
    /// ```
    #[must_use]
    pub fn new(scenario: Scenario, intervals: usize) -> Self {
        EmulationConfig {
            scenario,
            intervals,
            transport: TransportKind::Loopback,
            realtime: false,
            sync_timeout: Duration::from_secs(30),
        }
    }
}

/// What a whole emulation measured.
#[derive(Debug, Clone)]
pub struct EmulationReport {
    /// Backend name (`"loopback"`, `"udp"`, or `"udp-processes"`).
    pub backend: &'static str,
    /// Deployment size.
    pub links: usize,
    /// Intervals run.
    pub intervals: usize,
    /// The decision-trace fingerprint every node agreed on.
    pub fingerprint: u64,
    /// The protocol-level run report (identical on every replica).
    pub run: RunReport,
    /// Total wall-clock deadline misses across all nodes.
    pub misses: u64,
    /// `misses / (links × intervals)` — the measured fraction of link
    /// intervals whose real-time exchange overran the deadline.
    pub miss_rate: f64,
    /// Per-link wall-clock miss counts.
    pub per_link_misses: Vec<u64>,
    /// Longest wall-clock interval any node observed.
    pub max_interval: Duration,
    /// Mean of the nodes' mean wall-clock interval durations.
    pub mean_interval: Duration,
}

/// Runs one node per link as threads in this process and folds their
/// reports.
///
/// # Errors
///
/// Propagates the first node error ([`NetError::Desync`],
/// [`NetError::Timeout`], ...), and returns [`NetError::Mismatch`] if the
/// nodes' fingerprints somehow disagree (which would be a bug in the
/// lockstep layer — every desync has a dedicated error path).
///
/// # Panics
///
/// Panics if a node thread panics.
///
/// # Example
///
/// ```
/// use rtmac_net::{run_emulation, EmulationConfig};
///
/// let sc = rtmac::scenario::by_name("tiny").unwrap();
/// let report = run_emulation(&EmulationConfig::new(sc, 20)).unwrap();
/// assert_eq!(report.links, 3);
/// assert_eq!(report.run.intervals, 20);
/// ```
pub fn run_emulation(cfg: &EmulationConfig) -> Result<EmulationReport, NetError> {
    let n = cfg.scenario.links;
    let results: Vec<Result<NodeReport, NetError>> = match cfg.transport {
        TransportKind::Loopback => run_nodes(cfg, LoopbackHub::endpoints(n)),
        TransportKind::Udp => run_nodes(cfg, UdpTransport::local_cluster(n)?),
    };
    let mut reports = Vec::with_capacity(n);
    for result in results {
        reports.push(result?);
    }
    fold_reports(cfg.transport.name(), cfg, reports)
}

fn run_nodes<T: Transport + Send>(
    cfg: &EmulationConfig,
    endpoints: Vec<T>,
) -> Vec<Result<NodeReport, NetError>> {
    std::thread::scope(|scope| {
        endpoints
            .into_iter()
            .map(|ep| {
                let node_cfg = NodeConfig {
                    scenario: cfg.scenario.clone(),
                    intervals: cfg.intervals,
                    sync_timeout: cfg.sync_timeout,
                    realtime: cfg.realtime,
                };
                scope.spawn(move || LinkNode::new(ep, node_cfg)?.run())
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|handle| handle.join().expect("link node thread panicked"))
            .collect()
    })
}

fn fold_reports(
    backend: &'static str,
    cfg: &EmulationConfig,
    reports: Vec<NodeReport>,
) -> Result<EmulationReport, NetError> {
    let n = cfg.scenario.links;
    let fingerprint = reports.first().map(|r| r.fingerprint).unwrap_or_default();
    for r in &reports {
        if r.fingerprint != fingerprint {
            return Err(NetError::Mismatch {
                what: format!("link {} decision-trace fingerprint", r.link),
                expected: fingerprint,
                got: r.fingerprint,
            });
        }
    }
    let misses: u64 = reports.iter().map(|r| r.misses).sum();
    let mut per_link_misses = vec![0u64; n];
    for r in &reports {
        per_link_misses[r.link] = r.misses;
    }
    let total_intervals = (n * cfg.intervals) as u64;
    let run = match reports.first() {
        Some(r) => r.report.clone(),
        None => sim_trace(&cfg.scenario, cfg.intervals)?.report,
    };
    Ok(EmulationReport {
        backend,
        links: n,
        intervals: cfg.intervals,
        fingerprint,
        run,
        misses,
        miss_rate: if total_intervals == 0 {
            0.0
        } else {
            misses as f64 / total_intervals as f64
        },
        per_link_misses,
        max_interval: reports
            .iter()
            .map(|r| r.max_interval)
            .max()
            .unwrap_or(Duration::ZERO),
        mean_interval: mean_duration(reports.iter().map(|r| r.mean_interval)),
    })
}

fn mean_duration(durations: impl ExactSizeIterator<Item = Duration>) -> Duration {
    let n = durations.len() as u32;
    if n == 0 {
        return Duration::ZERO;
    }
    durations
        .sum::<Duration>()
        .checked_div(n)
        .unwrap_or(Duration::ZERO)
}

/// Runs one real `rtmac-netd` process per link over localhost UDP.
///
/// The harness renders the scenario to a temporary file (so every child
/// parses the exact same text and therefore computes the same scenario
/// digest), pre-assigns one localhost port per link, launches the daemon
/// processes in a full mesh, and reads back each child's `key=value`
/// report file. The protocol-level [`RunReport`] comes from a local sim
/// replica, whose fingerprint every child must match.
///
/// # Errors
///
/// Returns [`NetError::Unsupported`] when the scenario cannot be rendered
/// to a file, [`NetError::Io`] for spawn/port/report-file failures, a
/// child's own error kind when one exits unsuccessfully, and
/// [`NetError::Mismatch`] when a child's fingerprint differs from the sim.
///
/// # Panics
///
/// Propagates policy-engine panics from the harness's local sim replica,
/// as in [`rtmac::Network::step`].
pub fn run_emulation_processes(
    cfg: &EmulationConfig,
    netd: &Path,
) -> Result<EmulationReport, NetError> {
    // Canonicalize through the file format once so the harness's own
    // digest-relevant scenario equals the children's parse result.
    let rendered = scenario_file::render(&cfg.scenario)?;
    let scenario = scenario_file::parse(&rendered)?;
    let n = scenario.links;

    let dir = std::env::temp_dir().join(format!("rtmac-netd-emul-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let scenario_path = dir.join("scenario.toml");
    std::fs::File::create(&scenario_path)?.write_all(rendered.as_bytes())?;

    // Reserve one OS-assigned port per link, then release the sockets so
    // the children can bind them. The gap is racy in principle; on a box
    // that is not churning ephemeral ports it is reliable, and a lost race
    // fails loudly as a bind error in the child.
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        addrs.push(socket.local_addr()?);
    }

    let mut children = Vec::with_capacity(n);
    for link in 0..n {
        let peers: Vec<String> = addrs
            .iter()
            .enumerate()
            .filter(|&(peer, _)| peer != link)
            .map(|(_, a)| a.to_string())
            .collect();
        let report_path = dir.join(format!("report-{link}.txt"));
        let mut command = std::process::Command::new(netd);
        command
            .arg("--scenario")
            .arg(&scenario_path)
            .arg("--link")
            .arg(link.to_string())
            .arg("--bind")
            .arg(addrs[link].to_string())
            .arg("--peers")
            .arg(peers.join(","))
            .arg("--intervals")
            .arg(cfg.intervals.to_string())
            .arg("--timeout-ms")
            .arg(cfg.sync_timeout.as_millis().to_string())
            .arg("--report")
            .arg(&report_path)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::piped());
        if cfg.realtime {
            command.arg("--realtime");
        }
        let child = command
            .spawn()
            .map_err(|e| NetError::Io(format!("cannot launch {}: {e}", netd.display())))?;
        children.push((child, report_path));
    }

    let mut reports = Vec::with_capacity(n);
    let mut failure: Option<NetError> = None;
    for (link, (child, report_path)) in children.into_iter().enumerate() {
        let output = child.wait_with_output()?;
        if !output.status.success() && failure.is_none() {
            let stderr = String::from_utf8_lossy(&output.stderr);
            failure = Some(NetError::Io(format!(
                "rtmac-netd for link {link} exited with {}: {}",
                output.status,
                stderr.trim()
            )));
        }
        if failure.is_none() {
            let text = std::fs::read_to_string(&report_path)
                .map_err(|e| NetError::Io(format!("no report from link {link}: {e}")))?;
            reports.push(parse_child_report(&text)?);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    if let Some(err) = failure {
        return Err(err);
    }

    let sim = sim_trace(&scenario, cfg.intervals)?;
    let fingerprint = sim.fingerprint;
    let mut per_link_misses = vec![0u64; n];
    let mut misses = 0u64;
    let mut max_interval = Duration::ZERO;
    let mut mean_sum = Duration::ZERO;
    for child in &reports {
        if child.fingerprint != fingerprint {
            return Err(NetError::Mismatch {
                what: format!("link {} decision-trace fingerprint (vs sim)", child.link),
                expected: fingerprint,
                got: child.fingerprint,
            });
        }
        per_link_misses[child.link] = child.misses;
        misses += child.misses;
        max_interval = max_interval.max(child.max_interval);
        mean_sum += child.mean_interval;
    }
    let total_intervals = (n * cfg.intervals) as u64;
    Ok(EmulationReport {
        backend: "udp-processes",
        links: n,
        intervals: cfg.intervals,
        fingerprint,
        run: sim.report,
        misses,
        miss_rate: if total_intervals == 0 {
            0.0
        } else {
            misses as f64 / total_intervals as f64
        },
        per_link_misses,
        max_interval,
        mean_interval: mean_sum
            .checked_div(n.max(1) as u32)
            .unwrap_or(Duration::ZERO),
    })
}

/// One child daemon's measurements, parsed from its report file.
#[derive(Debug, Clone)]
struct ChildReport {
    link: usize,
    fingerprint: u64,
    misses: u64,
    max_interval: Duration,
    mean_interval: Duration,
}

fn parse_child_report(text: &str) -> Result<ChildReport, NetError> {
    let mut link = None;
    let mut fingerprint = None;
    let mut misses = None;
    let mut max_us = None;
    let mut mean_us = None;
    for line in text.lines() {
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let value = value.trim();
        match key.trim() {
            "link" => link = value.parse::<usize>().ok(),
            "fingerprint" => {
                fingerprint = value
                    .strip_prefix("0x")
                    .and_then(|hex| u64::from_str_radix(hex, 16).ok());
            }
            "misses" => misses = value.parse::<u64>().ok(),
            "max_interval_us" => max_us = value.parse::<u64>().ok(),
            "mean_interval_us" => mean_us = value.parse::<u64>().ok(),
            _ => {}
        }
    }
    match (link, fingerprint, misses, max_us, mean_us) {
        (Some(link), Some(fingerprint), Some(misses), Some(max_us), Some(mean_us)) => {
            Ok(ChildReport {
                link,
                fingerprint,
                misses,
                max_interval: Duration::from_micros(max_us),
                mean_interval: Duration::from_micros(mean_us),
            })
        }
        _ => Err(NetError::Io(
            "child report file is missing required keys".to_string(),
        )),
    }
}

/// The default location of the `rtmac-netd` binary: next to the current
/// executable (which is where cargo puts workspace binaries).
#[must_use]
pub fn default_netd_path() -> PathBuf {
    let name = if cfg!(windows) {
        "rtmac-netd.exe"
    } else {
        "rtmac-netd"
    };
    std::env::current_exe()
        .ok()
        .and_then(|exe| Some(exe.parent()?.join(name)))
        .unwrap_or_else(|| PathBuf::from(name))
}

/// The replay contract's verdict: one scenario, one seed, every backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayVerdict {
    /// Deployment size checked.
    pub links: usize,
    /// Intervals checked.
    pub intervals: usize,
    /// The sim backend's fingerprint (the reference).
    pub sim: u64,
    /// The loopback deployment's fingerprint.
    pub loopback: u64,
    /// The UDP deployment's fingerprint, when that leg was run.
    pub udp: Option<u64>,
}

impl ReplayVerdict {
    /// True when every backend produced the reference fingerprint.
    #[must_use]
    pub fn matches(&self) -> bool {
        self.loopback == self.sim && self.udp.is_none_or(|udp| udp == self.sim)
    }
}

/// Runs the replay contract: `sc` for `intervals` intervals through the
/// sim and loopback backends (plus UDP when `udp` is true) and reports
/// each fingerprint.
///
/// # Errors
///
/// Propagates any emulation error; a *successful* return with
/// `matches() == false` means the contract itself is broken.
///
/// # Panics
///
/// Panics if a node thread panics, as in [`run_emulation`].
///
/// # Example
///
/// ```
/// use rtmac_net::replay_check;
///
/// let sc = rtmac::scenario::by_name("tiny").unwrap();
/// let verdict = replay_check(&sc, 15, false).unwrap();
/// assert!(verdict.matches());
/// ```
pub fn replay_check(sc: &Scenario, intervals: usize, udp: bool) -> Result<ReplayVerdict, NetError> {
    let sim = sim_trace(sc, intervals)?;
    let mut cfg = EmulationConfig::new(sc.clone(), intervals);
    let loopback = run_emulation(&cfg)?;
    let udp = if udp {
        cfg.transport = TransportKind::Udp;
        Some(run_emulation(&cfg)?.fingerprint)
    } else {
        None
    };
    Ok(ReplayVerdict {
        links: sc.links,
        intervals,
        sim: sim.fingerprint,
        loopback: loopback.fingerprint,
        udp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtmac::scenario;

    #[test]
    fn loopback_emulation_matches_sim() {
        let sc = scenario::by_name("tiny").unwrap();
        let report = run_emulation(&EmulationConfig::new(sc.clone(), 30)).unwrap();
        let sim = sim_trace(&sc, 30).unwrap();
        assert_eq!(report.fingerprint, sim.fingerprint);
        assert_eq!(
            report.run.per_link_throughput,
            sim.report.per_link_throughput
        );
        assert_eq!(report.per_link_misses.len(), 3);
    }

    #[test]
    fn udp_emulation_matches_sim() {
        let sc = scenario::by_name("tiny").unwrap();
        let mut cfg = EmulationConfig::new(sc.clone(), 20);
        cfg.transport = TransportKind::Udp;
        let report = run_emulation(&cfg).unwrap();
        assert_eq!(report.backend, "udp");
        assert_eq!(report.fingerprint, sim_trace(&sc, 20).unwrap().fingerprint);
    }

    #[test]
    fn replay_verdict_spots_disagreement() {
        let verdict = ReplayVerdict {
            links: 3,
            intervals: 10,
            sim: 1,
            loopback: 1,
            udp: Some(2),
        };
        assert!(!verdict.matches());
        assert!(ReplayVerdict {
            udp: None,
            ..verdict
        }
        .matches());
    }

    #[test]
    fn child_report_round_trip_parses() {
        let text =
            "link=4\nfingerprint=0x00ff\nmisses=2\nmax_interval_us=900\nmean_interval_us=120\n";
        let report = parse_child_report(text).unwrap();
        assert_eq!(report.link, 4);
        assert_eq!(report.fingerprint, 0xff);
        assert_eq!(report.misses, 2);
        assert!(parse_child_report("link=1\n").is_err());
    }
}
