//! Panic-reachability fixture: two pub APIs reach the same panic
//! transitively; only the undocumented one is a finding.

/// Documented contract.
///
/// # Panics
///
/// Panics when `x` is zero.
pub fn documented(x: u32) -> u32 {
    check(x)
}

/// Undocumented: reaches the same panic through `check`.
pub fn undocumented(x: u32) -> u32 {
    check(x)
}

fn check(x: u32) -> u32 {
    if x == 0 {
        panic!("zero input");
    }
    x
}
