//! A lightweight, comment/string-aware lexer for Rust source files.
//!
//! The lint rules are lexical: they look for identifiers, method calls,
//! and macro invocations in *code*, never inside comments, string
//! literals, or char literals. This module produces that separation
//! without a full parser: it walks the file once and emits, per line,
//!
//! * the code with every comment and literal body blanked to spaces
//!   (so columns are preserved for reporting), and
//! * the concatenated comment text (where `// lint: allow(...)` waivers
//!   live).
//!
//! A second pass marks the lines that belong to test-only items —
//! anything introduced by a `#[cfg(test)]` / `#[cfg(all(test, ...))]` /
//! `#[test]` attribute, through the end of the item's brace block — so
//! rules that exempt test code can skip them.

/// The lexed view of one source file. All vectors have one entry per
/// source line.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Source lines with comment text and string/char literal bodies
    /// replaced by spaces. Column positions match the original file.
    pub code: Vec<String>,
    /// Comment text found on each line (line and block comments), without
    /// the comment markers.
    pub comments: Vec<String>,
    /// Whether each line lies inside a test-only item.
    pub in_test: Vec<bool>,
}

impl SourceFile {
    /// Number of lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the file has no lines.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }
}

/// Lexer state while scanning the raw character stream.
enum State {
    Normal,
    LineComment,
    /// Nested block comments; the payload is the nesting depth.
    BlockComment(u32),
    /// Inside `"…"`; the payload tracks a pending backslash escape.
    Str {
        escaped: bool,
    },
    /// Inside `r"…"` / `r#"…"#`; the payload is the number of `#`s.
    RawStr(u32),
    /// Inside `'…'` with escape handling.
    CharLit {
        escaped: bool,
    },
}

/// Lexes `src` into masked code lines, comment lines, and test markers.
#[must_use]
pub fn lex(src: &str) -> SourceFile {
    let chars: Vec<char> = src.chars().collect();
    let mut code_lines: Vec<String> = Vec::new();
    let mut comment_lines: Vec<String> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Normal;
    let mut i = 0;

    macro_rules! flush_line {
        () => {
            code_lines.push(std::mem::take(&mut code));
            comment_lines.push(std::mem::take(&mut comment));
        };
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(state, State::LineComment) {
                state = State::Normal;
            }
            flush_line!();
            i += 1;
            continue;
        }
        match state {
            State::Normal => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    code.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    state = State::Str { escaped: false };
                    code.push(' ');
                    i += 1;
                } else if (c == 'r' || c == 'b') && !prev_is_ident(&chars, i) {
                    // Possible raw/byte string: r", r#", br", b", brb is not
                    // a thing — scan the prefix run of [rb] then `#`s.
                    let mut j = i;
                    while j < chars.len() && (chars[j] == 'r' || chars[j] == 'b') {
                        j += 1;
                    }
                    let raw = chars[i..j].contains(&'r');
                    let mut hashes = 0u32;
                    let mut k = j;
                    while raw && k < chars.len() && chars[k] == '#' {
                        hashes += 1;
                        k += 1;
                    }
                    if j - i <= 2 && chars.get(k) == Some(&'"') && (raw || hashes == 0) {
                        for _ in i..=k {
                            code.push(' ');
                        }
                        state = if raw {
                            State::RawStr(hashes)
                        } else {
                            State::Str { escaped: false }
                        };
                        i = k + 1;
                    } else {
                        code.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal vs lifetime: a backslash or a
                    // single-char body closed by `'` means a literal;
                    // anything else (e.g. `'a>` or `'static`) is a
                    // lifetime and stays in the code stream.
                    let next2 = chars.get(i + 2).copied();
                    if next == Some('\\') {
                        state = State::CharLit { escaped: false };
                        code.push(' ');
                        i += 1;
                    } else if next.is_some() && next != Some('\'') && next2 == Some('\'') {
                        code.push_str("   ");
                        i += 3;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                comment.push(c);
                code.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    state = if depth > 1 {
                        State::BlockComment(depth - 1)
                    } else {
                        State::Normal
                    };
                    code.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    code.push_str("  ");
                    i += 2;
                } else {
                    comment.push(c);
                    code.push(' ');
                    i += 1;
                }
            }
            State::Str { escaped } => {
                if escaped {
                    state = State::Str { escaped: false };
                } else if c == '\\' {
                    state = State::Str { escaped: true };
                } else if c == '"' {
                    state = State::Normal;
                }
                code.push(' ');
                i += 1;
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let closed = (0..hashes as usize).all(|h| chars.get(i + 1 + h) == Some(&'#'));
                    if closed {
                        for _ in 0..=hashes as usize {
                            code.push(' ');
                        }
                        state = State::Normal;
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                code.push(' ');
                i += 1;
            }
            State::CharLit { escaped } => {
                if escaped {
                    state = State::CharLit { escaped: false };
                } else if c == '\\' {
                    state = State::CharLit { escaped: true };
                } else if c == '\'' {
                    state = State::Normal;
                }
                code.push(' ');
                i += 1;
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        flush_line!();
    }

    let in_test = mark_test_lines(&code_lines);
    SourceFile {
        code: code_lines,
        comments: comment_lines,
        in_test,
    }
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Marks the lines covered by test-only items: a `#[test]` or
/// `#[cfg(test)]`-style attribute plus the brace block (or terminated
/// statement) of the item it decorates.
fn mark_test_lines(code: &[String]) -> Vec<bool> {
    // Flatten the masked code with a char → line map so attributes and
    // brace blocks can span lines.
    let mut flat: Vec<char> = Vec::new();
    let mut line_of: Vec<usize> = Vec::new();
    for (ln, line) in code.iter().enumerate() {
        for c in line.chars() {
            flat.push(c);
            line_of.push(ln);
        }
        flat.push('\n');
        line_of.push(ln);
    }
    let mut in_test = vec![false; code.len()];
    let mut i = 0;
    while i < flat.len() {
        if flat[i] != '#' {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        while j < flat.len() && flat[j].is_whitespace() {
            j += 1;
        }
        if flat.get(j) != Some(&'[') {
            i += 1;
            continue;
        }
        // Capture the attribute body up to the matching `]`.
        let mut depth = 0i32;
        let mut body = String::new();
        let mut k = j;
        while k < flat.len() {
            match flat[k] {
                '[' => depth += 1,
                ']' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                c if !c.is_whitespace() => body.push(c),
                _ => {}
            }
            k += 1;
        }
        if k >= flat.len() {
            break;
        }
        if is_test_attr(&body) {
            let start_line = line_of[i];
            let end = item_end(&flat, k + 1);
            let end_line = line_of[end.min(flat.len() - 1)];
            for marker in in_test.iter_mut().take(end_line + 1).skip(start_line) {
                *marker = true;
            }
        }
        i = k + 1;
    }
    in_test
}

/// Whether a whitespace-stripped attribute body (without the surrounding
/// `[]`) gates an item to test builds.
fn is_test_attr(body: &str) -> bool {
    if body == "test" {
        return true;
    }
    if !body.starts_with("cfg(") || body.starts_with("cfg(not(") {
        return false;
    }
    contains_word(body, "test")
}

/// Whether `needle` occurs in `hay` with non-identifier characters on
/// both sides.
#[must_use]
pub fn contains_word(hay: &str, needle: &str) -> bool {
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let before_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Finds the end position of the item that starts after an attribute:
/// skips further attributes, then either the matching `}` of the first
/// brace block or the first top-level `;`.
fn item_end(flat: &[char], mut i: usize) -> usize {
    let mut brace_depth = 0i32;
    let mut seen_brace = false;
    while i < flat.len() {
        match flat[i] {
            '{' => {
                brace_depth += 1;
                seen_brace = true;
            }
            '}' => {
                brace_depth -= 1;
                if seen_brace && brace_depth <= 0 {
                    return i;
                }
            }
            ';' if !seen_brace => return i,
            _ => {}
        }
        i += 1;
    }
    flat.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_comments_but_keeps_text() {
        let f = lex("let x = 1; // thread_rng() here\n");
        assert!(!f.code[0].contains("thread_rng"));
        assert!(f.comments[0].contains("thread_rng"));
        assert!(f.code[0].contains("let x = 1;"));
    }

    #[test]
    fn masks_strings_and_chars() {
        let f = lex("let s = \"SystemTime::now()\"; let c = 'x'; let l: &'static str = s;\n");
        assert!(!f.code[0].contains("SystemTime"));
        assert!(f.code[0].contains("&'static str"), "{}", f.code[0]);
    }

    #[test]
    fn masks_raw_and_byte_strings() {
        let f = lex("let a = r#\"Instant\"#; let b = b\"Instant\"; let c = br\"Instant\";\n");
        assert!(!f.code[0].contains("Instant"), "{}", f.code[0]);
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let f = lex("let s = \"a\\\"Instant\"; let t = Instant;\n");
        let pos = f.code[0].find("Instant");
        // Only the second, real identifier survives.
        assert_eq!(f.code[0].matches("Instant").count(), 1, "{}", f.code[0]);
        assert!(pos.is_some());
    }

    #[test]
    fn nested_block_comments() {
        let f = lex("a /* x /* y */ Instant */ b\n");
        assert!(!f.code[0].contains("Instant"));
        assert!(f.code[0].contains('a') && f.code[0].contains('b'));
    }

    #[test]
    fn columns_are_preserved() {
        let src = "abc /* x */ def\n";
        let f = lex(src);
        assert_eq!(f.code[0].len(), src.len() - 1);
        assert_eq!(f.code[0].find("def"), src.find("def"));
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let f = lex(src);
        assert_eq!(f.in_test, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn test_attribute_marks_one_fn() {
        let src = "#[test]\nfn t() {\n    x.unwrap();\n}\nfn real() {}\n";
        let f = lex(src);
        assert_eq!(f.in_test, vec![true, true, true, true, false]);
    }

    #[test]
    fn cfg_all_test_counts_cfg_not_test_does_not() {
        let f = lex("#[cfg(all(test, feature = \"x\"))]\nmod m {\n}\n");
        assert!(f.in_test[0] && f.in_test[1] && f.in_test[2]);
        let g = lex("#[cfg(not(test))]\nmod m {\n}\n");
        assert!(!g.in_test[0] && !g.in_test[1]);
    }

    #[test]
    fn attr_with_following_attrs_finds_item_block() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod t {\n    a();\n}\nfn f() {}\n";
        let f = lex(src);
        assert_eq!(f.in_test, vec![true, true, true, true, true, false]);
    }

    #[test]
    fn word_boundaries() {
        assert!(contains_word("use std::time::Instant;", "Instant"));
        assert!(!contains_word("/// Instantiates the policy", "Instant"));
        assert!(!contains_word("my_thread_rng_like", "thread_rng"));
    }
}
