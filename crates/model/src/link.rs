//! Typed link identifiers.

use std::fmt;

/// The identifier of one directed wireless link.
///
/// Links are numbered `0..N` internally (the paper numbers them `1..N`; we
/// keep zero-based indices for direct slice indexing and translate only in
/// display output).
///
/// # Example
///
/// ```
/// use rtmac_model::LinkId;
///
/// let link = LinkId::new(3);
/// assert_eq!(link.index(), 3);
/// assert_eq!(link.to_string(), "link#3");
/// let from_usize: LinkId = 3.into();
/// assert_eq!(link, from_usize);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(usize);

impl LinkId {
    /// Creates a link id from a zero-based index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        LinkId(index)
    }

    /// The zero-based index, suitable for slice indexing.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }

    /// Iterates over all link ids `0..n`.
    ///
    /// ```
    /// # use rtmac_model::LinkId;
    /// let ids: Vec<LinkId> = LinkId::all(3).collect();
    /// assert_eq!(ids, [LinkId::new(0), LinkId::new(1), LinkId::new(2)]);
    /// ```
    pub fn all(n: usize) -> impl Iterator<Item = LinkId> {
        (0..n).map(LinkId)
    }
}

impl From<usize> for LinkId {
    fn from(index: usize) -> Self {
        LinkId(index)
    }
}

impl From<LinkId> for usize {
    fn from(id: LinkId) -> usize {
        id.0
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_through_usize() {
        let id = LinkId::new(7);
        let raw: usize = id.into();
        assert_eq!(LinkId::from(raw), id);
    }

    #[test]
    fn all_yields_each_link_once() {
        assert_eq!(LinkId::all(0).count(), 0);
        let v: Vec<usize> = LinkId::all(5).map(LinkId::index).collect();
        assert_eq!(v, [0, 1, 2, 3, 4]);
    }

    #[test]
    fn ordering_matches_index() {
        assert!(LinkId::new(1) < LinkId::new(2));
    }
}
