//! Parameterized reproductions of Figs. 3–10 of the paper.
//!
//! Each function simulates the paper's exact workload (Section VI) for the
//! requested number of intervals and returns a [`SeriesTable`] holding the
//! same series the figure plots. The paper's defaults: 5000 intervals for
//! the video figures (Figs. 3–8), 20000 for the control figures
//! (Figs. 9–10).

use rtmac::model::LinkId;
use rtmac::{Network, PolicyKind, RunReport};
use rtmac_traffic::BurstUniform;

use crate::table::SeriesTable;

/// The three contenders of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Contender {
    /// The paper's decentralized algorithm.
    DbDp,
    /// The centralized feasibility-optimal reference.
    Ldf,
    /// The discretized Fast-CSMA baseline.
    Fcsma,
}

impl Contender {
    /// All three, in the paper's plotting order.
    pub const ALL: [Contender; 3] = [Contender::DbDp, Contender::Ldf, Contender::Fcsma];

    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Contender::DbDp => "DB-DP",
            Contender::Ldf => "LDF",
            Contender::Fcsma => "FCSMA",
        }
    }

    /// The corresponding policy configuration.
    #[must_use]
    pub fn policy(self) -> PolicyKind {
        match self {
            Contender::DbDp => PolicyKind::db_dp(),
            Contender::Ldf => PolicyKind::Ldf,
            Contender::Fcsma => PolicyKind::fcsma(),
        }
    }
}

/// Runs the video workload (20 ms deadline, 1500 B payload, burst-uniform
/// arrivals) with per-link burst probabilities `alpha`, success
/// probabilities `p`, and delivery ratios `rho`.
///
/// # Panics
///
/// Panics if the parameter vectors are inconsistent (they come from the
/// figure definitions below, so this indicates a bug in the caller).
#[must_use]
pub fn run_video(
    alpha: &[f64],
    p: &[f64],
    rho: &[f64],
    policy: PolicyKind,
    intervals: usize,
    seed: u64,
) -> RunReport {
    let n = alpha.len();
    let traffic = BurstUniform::new(alpha.to_vec(), 6).expect("valid alpha");
    let mut net = Network::builder()
        .links(n)
        .deadline_ms(20)
        .payload_bytes(1500)
        .success_probabilities(p.to_vec())
        .traffic(Box::new(traffic))
        .delivery_ratios(rho.to_vec())
        .policy(policy)
        .seed(seed)
        .build()
        .expect("valid video network");
    net.run(intervals)
}

/// Runs the control workload (2 ms deadline, 100 B payload, Bernoulli
/// arrivals with rate `lambda` on every link).
///
/// # Panics
///
/// Panics if the parameters are inconsistent.
#[must_use]
pub fn run_control(
    n: usize,
    lambda: f64,
    p: f64,
    rho: f64,
    policy: PolicyKind,
    intervals: usize,
    seed: u64,
) -> RunReport {
    let mut net = Network::builder()
        .links(n)
        .deadline_ms(2)
        .payload_bytes(100)
        .uniform_success_probability(p)
        .bernoulli_arrivals(lambda)
        .delivery_ratio(rho)
        .policy(policy)
        .seed(seed)
        .build()
        .expect("valid control network");
    net.run(intervals)
}

fn contender_columns() -> Vec<String> {
    Contender::ALL.iter().map(|c| c.label().into()).collect()
}

/// Fig. 3 — total timely-throughput deficiency of the symmetric video
/// network (N = 20, p = 0.7, ρ = 0.9) as the burst probability `α*` sweeps.
#[must_use]
pub fn fig3(intervals: usize, seed: u64) -> SeriesTable {
    let n = 20;
    let mut table = SeriesTable::new(
        "Fig. 3: symmetric video network, 90% delivery ratio (total deficiency vs alpha*)",
        "alpha*",
        contender_columns(),
    );
    let alphas: Vec<f64> = (0..=6).map(|s| 0.40 + 0.05 * f64::from(s)).collect();
    let rows = crate::parallel_map(alphas.clone(), |alpha| {
        Contender::ALL
            .iter()
            .map(|c| {
                run_video(
                    &vec![alpha; n],
                    &[0.7; 20],
                    &[0.9; 20],
                    c.policy(),
                    intervals,
                    seed,
                )
                .final_total_deficiency
            })
            .collect::<Vec<f64>>()
    });
    for (alpha, row) in alphas.into_iter().zip(rows) {
        table.push_row(alpha, row);
    }
    table
}

/// Fig. 4 — deficiency of the same network at fixed `α* = 0.55` as the
/// required delivery ratio sweeps.
#[must_use]
pub fn fig4(intervals: usize, seed: u64) -> SeriesTable {
    let n = 20;
    let mut table = SeriesTable::new(
        "Fig. 4: symmetric video network, alpha* = 0.55 (total deficiency vs delivery ratio)",
        "rho",
        contender_columns(),
    );
    let rhos: Vec<f64> = (0..=8).map(|s| 0.80 + 0.025 * f64::from(s)).collect();
    let rows = crate::parallel_map(rhos.clone(), |rho| {
        Contender::ALL
            .iter()
            .map(|c| {
                run_video(
                    &vec![0.55; n],
                    &[0.7; 20],
                    &vec![rho; n],
                    c.policy(),
                    intervals,
                    seed,
                )
                .final_total_deficiency
            })
            .collect::<Vec<f64>>()
    });
    for (rho, row) in rhos.into_iter().zip(rows) {
        table.push_row(rho, row);
    }
    table
}

/// Fig. 5 output: the sampled running-throughput series plus the interval
/// at which each policy entered the 1% convergence band.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// Running timely-throughput of the lowest-initial-priority link,
    /// sampled every few intervals.
    pub table: SeriesTable,
    /// `(policy, first interval within 1% of q_n)`.
    pub convergence: Vec<(String, Option<usize>)>,
    /// The tracked link's requirement `q_n`.
    pub requirement: f64,
}

/// Fig. 5 — convergence of the link with the lowest priority at time 0
/// (α* = 0.55, ρ = 0.93) under DB-DP vs LDF.
#[must_use]
pub fn fig5(intervals: usize, seed: u64) -> Fig5Result {
    let n = 20;
    let tracked = LinkId::new(n - 1); // priority N under the identity σ(0)
    let q = 0.93 * 3.5 * 0.55;
    // Three policies: the paper's two, plus DB-DP with three swap pairs
    // (Remark 6) showing how the reordering rate sets the convergence
    // constant.
    let configs: Vec<(String, PolicyKind)> = vec![
        ("DB-DP".into(), Contender::DbDp.policy()),
        ("LDF".into(), Contender::Ldf.policy()),
        (
            "DB-DP 3 pairs".into(),
            PolicyKind::DbDp {
                influence: Box::new(rtmac::model::influence::PaperLog::default()),
                r: 10.0,
                swap_pairs: 3,
            },
        ),
    ];
    let labels: Vec<String> = configs.iter().map(|(l, _)| l.clone()).collect();
    let results = crate::parallel_map(configs, |(label, policy)| {
        let traffic = BurstUniform::symmetric(n, 0.55, 6).expect("valid alpha");
        let mut net = Network::builder()
            .links(n)
            .deadline_ms(20)
            .payload_bytes(1500)
            .uniform_success_probability(0.7)
            .traffic(Box::new(traffic))
            .delivery_ratio(0.93)
            .policy(policy)
            .track_link(tracked, 0.01)
            .seed(seed)
            .build()
            .expect("valid fig5 network");
        let report = net.run(intervals);
        let tracker = report.tracked.expect("tracking configured");
        ((label, tracker.settled_at()), tracker.history().to_vec())
    });
    let mut histories = Vec::new();
    let mut convergence = Vec::new();
    for (conv, history) in results {
        convergence.push(conv);
        histories.push(history);
    }
    let mut table = SeriesTable::new(
        "Fig. 5: running timely-throughput of the lowest-initial-priority link (alpha* = 0.55, rho = 0.93)",
        "interval",
        labels,
    );
    let stride = (intervals / 50).max(1);
    for k in (0..intervals).step_by(stride) {
        table.push_row(k as f64, histories.iter().map(|h| h[k]).collect());
    }
    Fig5Result {
        table,
        convergence,
        requirement: q,
    }
}

/// Fig. 6 — average timely-throughput per priority index under a *fixed*
/// priority ordering at α* = 0.6: throughput increases with priority and
/// even the lowest priority is non-zero (the protocol's built-in
/// anti-starvation).
#[must_use]
pub fn fig6(intervals: usize, seed: u64) -> SeriesTable {
    let n = 20;
    let traffic = BurstUniform::symmetric(n, 0.6, 6).expect("valid alpha");
    let mut net = Network::builder()
        .links(n)
        .deadline_ms(20)
        .payload_bytes(1500)
        .uniform_success_probability(0.7)
        .traffic(Box::new(traffic))
        .delivery_ratio(0.9)
        .policy(PolicyKind::FixedPriority {
            sigma: rtmac::model::Permutation::identity(n),
        })
        .seed(seed)
        .build()
        .expect("valid fig6 network");
    let report = net.run(intervals);
    let mut table = SeriesTable::new(
        "Fig. 6: average timely-throughput per priority index under a fixed ordering (alpha* = 0.6)",
        "priority",
        vec!["throughput".into()],
    );
    // Identity σ: link i holds priority i + 1.
    for (i, &tp) in report.per_link_throughput.iter().enumerate() {
        table.push_row((i + 1) as f64, vec![tp]);
    }
    table
}

/// The asymmetric network of Figs. 7–8: links 0–9 form group 1
/// (p = 0.5, α = 0.5·α*), links 10–19 group 2 (p = 0.8, α = α*).
fn asymmetric_params(alpha_star: f64) -> (Vec<f64>, Vec<f64>) {
    let mut alpha = vec![0.5 * alpha_star; 10];
    alpha.extend(vec![alpha_star; 10]);
    let mut p = vec![0.5; 10];
    p.extend(vec![0.8; 10]);
    (alpha, p)
}

fn group_columns() -> Vec<String> {
    let mut cols = Vec::new();
    for c in Contender::ALL {
        cols.push(format!("{} g1", c.label()));
        cols.push(format!("{} g2", c.label()));
    }
    cols
}

fn group_deficiencies(report: &RunReport, rho: &[f64], alpha: &[f64]) -> (f64, f64) {
    // q_n = ρ_n · λ_n with λ_n = 3.5·α_n.
    let q: Vec<f64> = rho.iter().zip(alpha).map(|(r, a)| r * 3.5 * a).collect();
    let g1: Vec<LinkId> = (0..10).map(LinkId::new).collect();
    let g2: Vec<LinkId> = (10..20).map(LinkId::new).collect();
    (
        report.group_deficiency(&q, &g1),
        report.group_deficiency(&q, &g2),
    )
}

/// Fig. 7 — group-wide deficiency of the asymmetric network at ρ = 0.9 as
/// `α*` sweeps.
#[must_use]
pub fn fig7(intervals: usize, seed: u64) -> SeriesTable {
    let mut table = SeriesTable::new(
        "Fig. 7: asymmetric network, 90% delivery ratio (group deficiency vs alpha*)",
        "alpha*",
        group_columns(),
    );
    let alpha_stars: Vec<f64> = (0..=5).map(|s| 0.45 + 0.07 * f64::from(s)).collect();
    let rows = crate::parallel_map(alpha_stars.clone(), |alpha_star| {
        let (alpha, p) = asymmetric_params(alpha_star);
        let rho = vec![0.9; 20];
        let mut row = Vec::new();
        for c in Contender::ALL {
            let report = run_video(&alpha, &p, &rho, c.policy(), intervals, seed);
            let (g1, g2) = group_deficiencies(&report, &rho, &alpha);
            row.push(g1);
            row.push(g2);
        }
        row
    });
    for (alpha_star, row) in alpha_stars.into_iter().zip(rows) {
        table.push_row(alpha_star, row);
    }
    table
}

/// Fig. 8 — group-wide deficiency of the asymmetric network at fixed
/// `α* = 0.7` as the delivery ratio sweeps.
#[must_use]
pub fn fig8(intervals: usize, seed: u64) -> SeriesTable {
    let mut table = SeriesTable::new(
        "Fig. 8: asymmetric network, alpha* = 0.7 (group deficiency vs delivery ratio)",
        "rho",
        group_columns(),
    );
    let (alpha, p) = asymmetric_params(0.7);
    let rhos: Vec<f64> = (0..=6).map(|s| 0.80 + 0.03 * f64::from(s)).collect();
    let rows = crate::parallel_map(rhos.clone(), |rho_v| {
        let rho = vec![rho_v; 20];
        let mut row = Vec::new();
        for c in Contender::ALL {
            let report = run_video(&alpha, &p, &rho, c.policy(), intervals, seed);
            let (g1, g2) = group_deficiencies(&report, &rho, &alpha);
            row.push(g1);
            row.push(g2);
        }
        row
    });
    for (rho_v, row) in rhos.into_iter().zip(rows) {
        table.push_row(rho_v, row);
    }
    table
}

/// Fig. 9 — total deficiency of the control network (N = 10, p = 0.7,
/// ρ = 0.99, T = 2 ms, 100 B) as the Bernoulli arrival rate `λ*` sweeps.
#[must_use]
pub fn fig9(intervals: usize, seed: u64) -> SeriesTable {
    let mut table = SeriesTable::new(
        "Fig. 9: control network, 99% delivery ratio (total deficiency vs lambda*)",
        "lambda*",
        contender_columns(),
    );
    let lambdas: Vec<f64> = (0..=8).map(|s| 0.50 + 0.05 * f64::from(s)).collect();
    let rows = crate::parallel_map(lambdas.clone(), |lambda| {
        Contender::ALL
            .iter()
            .map(|c| {
                run_control(10, lambda, 0.7, 0.99, c.policy(), intervals, seed)
                    .final_total_deficiency
            })
            .collect::<Vec<f64>>()
    });
    for (lambda, row) in lambdas.into_iter().zip(rows) {
        table.push_row(lambda, row);
    }
    table
}

/// Fig. 10 — the control network at fixed `λ* = 0.78` as the delivery
/// ratio sweeps.
#[must_use]
pub fn fig10(intervals: usize, seed: u64) -> SeriesTable {
    let mut table = SeriesTable::new(
        "Fig. 10: control network, lambda* = 0.78 (total deficiency vs delivery ratio)",
        "rho",
        contender_columns(),
    );
    let rhos: Vec<f64> = (0..=5).map(|s| 0.90 + 0.02 * f64::from(s)).collect();
    let rows = crate::parallel_map(rhos.clone(), |rho| {
        Contender::ALL
            .iter()
            .map(|c| {
                run_control(10, 0.78, 0.7, rho, c.policy(), intervals, seed).final_total_deficiency
            })
            .collect::<Vec<f64>>()
    });
    for (rho, row) in rhos.into_iter().zip(rows) {
        table.push_row(rho, row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    // Small interval counts keep these as smoke tests; the binaries run the
    // full lengths.

    #[test]
    fn fig3_has_expected_shape() {
        let t = fig3(40, 7);
        assert_eq!(t.rows().len(), 7);
        assert_eq!(t.columns().len(), 3);
        // At the lightest load every policy's deficiency is small-ish and
        // at the heaviest load FCSMA is the worst.
        let first = &t.rows()[0];
        let last = t.rows().last().unwrap();
        assert!(first.1[1] < last.1[1], "LDF deficiency grows with load");
        assert!(
            last.1[2] >= last.1[1],
            "FCSMA should not beat LDF under overload"
        );
    }

    #[test]
    fn fig5_tracks_convergence() {
        let r = fig5(300, 3);
        assert_eq!(r.convergence.len(), 3); // DB-DP, LDF, DB-DP 3 pairs
        assert!(r.requirement > 0.0);
        assert!(!r.table.rows().is_empty());
        assert_eq!(r.table.columns().len(), 3);
    }

    #[test]
    fn fig6_throughput_increases_with_priority() {
        let t = fig6(300, 5);
        assert_eq!(t.rows().len(), 20);
        let first = t.rows()[0].1[0];
        let last = t.rows()[19].1[0];
        assert!(
            first > last,
            "priority 1 ({first}) should out-deliver priority 20 ({last})"
        );
        assert!(last > 0.0, "lowest priority must not starve");
    }

    #[test]
    fn control_runner_is_deterministic() {
        let a = run_control(4, 0.6, 0.7, 0.95, PolicyKind::Ldf, 50, 11);
        let b = run_control(4, 0.6, 0.7, 0.95, PolicyKind::Ldf, 50, 11);
        assert_eq!(a.per_link_throughput, b.per_link_throughput);
    }
}
