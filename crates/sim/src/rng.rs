//! Deterministic random-number streams.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// The RNG used throughout the workspace.
///
/// `SmallRng` is fast and, when seeded explicitly, fully deterministic across
/// runs on the same target. All stochastic components accept a `&mut SimRng`
/// rather than constructing their own randomness.
pub type SimRng = SmallRng;

/// A deterministic hierarchy of RNG seeds.
///
/// Simulations have many independent stochastic components — per-link channel
/// outcomes, arrival processes, coin flips, the shared swap-pair draw. Giving
/// each component its own stream keeps them statistically independent *and*
/// keeps results stable when one component draws more or fewer samples than
/// before (adding a retransmission must not perturb arrivals).
///
/// `SeedStream` derives child seeds from a root seed with a SplitMix64-style
/// mix, so `stream(label)` is a pure function of `(root_seed, label)`.
///
/// # Example
///
/// ```
/// use rtmac_sim::SeedStream;
/// use rand::Rng;
///
/// let seeds = SeedStream::new(42);
/// let mut channel_rng = seeds.rng(1);
/// let mut arrival_rng = seeds.rng(2);
/// let a: u64 = channel_rng.random();
/// let b: u64 = arrival_rng.random();
/// assert_ne!(a, b); // independent streams
///
/// // Re-deriving the same stream reproduces it exactly.
/// let mut again = SeedStream::new(42).rng(1);
/// assert_eq!(a, again.random::<u64>());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedStream {
    root: u64,
}

impl SeedStream {
    /// Creates a stream hierarchy rooted at `root`.
    #[must_use]
    pub fn new(root: u64) -> Self {
        SeedStream { root }
    }

    /// The root seed.
    #[must_use]
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Derives the 64-bit seed for child stream `label`.
    #[must_use]
    pub fn seed(&self, label: u64) -> u64 {
        splitmix64(self.root ^ splitmix64(label.wrapping_add(0x9E37_79B9_7F4A_7C15)))
    }

    /// Creates the RNG for child stream `label`.
    #[must_use]
    pub fn rng(&self, label: u64) -> SimRng {
        SimRng::seed_from_u64(self.seed(label))
    }

    /// Derives a child `SeedStream`, for components that themselves own
    /// multiple sub-streams (e.g. one per link).
    #[must_use]
    pub fn substream(&self, label: u64) -> SeedStream {
        SeedStream {
            root: self.seed(label),
        }
    }
}

/// The SplitMix64 finalizer: a strong 64-bit mixing function.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Convenience: a fresh RNG from a bare seed, for tests and examples.
#[must_use]
pub fn rng_from_seed(seed: u64) -> SimRng {
    let mut rng = SimRng::seed_from_u64(seed);
    // Touch the generator once so trivially related seeds decorrelate.
    let _ = rng.next_u64();
    rng
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn same_label_same_stream() {
        let s = SeedStream::new(7);
        let a: Vec<u64> = (0..10).map(|_| s.rng(3).random()).collect();
        let b: Vec<u64> = (0..10).map(|_| s.rng(3).random()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let s = SeedStream::new(7);
        let seeds: HashSet<u64> = (0..1000).map(|l| s.seed(l)).collect();
        assert_eq!(seeds.len(), 1000, "child seeds must not collide");
    }

    #[test]
    fn different_roots_differ() {
        let a = SeedStream::new(1).seed(0);
        let b = SeedStream::new(2).seed(0);
        assert_ne!(a, b);
    }

    #[test]
    fn substream_is_deterministic() {
        let s = SeedStream::new(99);
        assert_eq!(s.substream(4).seed(5), s.substream(4).seed(5));
        assert_ne!(s.substream(4).seed(5), s.substream(5).seed(4));
    }

    #[test]
    fn rng_from_seed_reproducible() {
        let mut a = rng_from_seed(123);
        let mut b = rng_from_seed(123);
        assert_eq!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn splitmix_known_nonfixed_point() {
        // Sanity: the mixer must not be the identity on small inputs.
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), 1);
    }
}
