//! Frame-based CSMA (Lu, Li, Srikant & Ying, CDC 2016 — the paper's
//! reference [23]): schedules are generated distributedly *once per frame*
//! and then executed open-loop.
//!
//! At the start of each interval a short control phase (modeled as a fixed
//! number of control slots) lets the backlogged links agree on a slot
//! allocation; the data phase then executes that allocation verbatim. The
//! paper's criticism, which this engine exists to demonstrate, is that the
//! allocation cannot react to what happens *inside* the frame:
//!
//! * a link that gets lucky early wastes the rest of its allocated slots
//!   (no one else may use them), and
//! * a link that gets unlucky cannot borrow slots from a finished
//!   neighbour.
//!
//! With reliable channels neither case occurs and the scheme is
//! feasibility-optimal (as proven in [23]); with unreliable channels it
//! leaves capacity on the floor exactly as Section I of the paper argues.

use rtmac_model::LinkId;
use rtmac_phy::channel::LossModel;
use rtmac_phy::Medium;
use rtmac_sim::{Nanos, SimRng};

use crate::{IntervalOutcome, MacTiming};

/// The frame-based CSMA engine.
///
/// Per interval it receives debt-derived `weights` and allocates the
/// available transmission slots among backlogged links proportionally
/// (largest-remainder rounding, ties to lower link ids), charges a control
/// phase of `control_slots` backoff slots, and executes the allocation
/// without adaptation.
#[derive(Debug, Clone)]
pub struct FrameCsmaEngine {
    timing: MacTiming,
    control_slots: u32,
}

impl FrameCsmaEngine {
    /// Creates the engine with the default control phase of 32 backoff
    /// slots (the per-frame contention the scheme needs to agree on a
    /// schedule).
    #[must_use]
    pub fn new(timing: MacTiming) -> Self {
        FrameCsmaEngine {
            timing,
            control_slots: 32,
        }
    }

    /// Overrides the control-phase length in backoff slots.
    #[must_use]
    pub fn with_control_slots(mut self, slots: u32) -> Self {
        self.control_slots = slots;
        self
    }

    /// The timing context.
    #[must_use]
    pub fn timing(&self) -> &MacTiming {
        &self.timing
    }

    /// Proportional allocation of `budget` slots by weight over backlogged
    /// links (largest remainder). A link is never allocated more slots
    /// than it has packets *plus* retry headroom `ceil(packets / p)` would
    /// suggest — the scheme in [23] sizes allocations for reliable
    /// channels, so we allocate by demand `packets` only, which is exactly
    /// what makes it fragile to losses.
    fn allocate(weights: &[f64], arrivals: &[u32], budget: u64) -> Vec<u64> {
        let n = weights.len();
        let mut alloc = vec![0u64; n];
        let backlogged: Vec<usize> = (0..n).filter(|&l| arrivals[l] > 0).collect();
        if backlogged.is_empty() || budget == 0 {
            return alloc;
        }
        let total_w: f64 = backlogged.iter().map(|&l| weights[l].max(1e-12)).sum();
        // First pass: floor of the proportional share, capped at demand.
        let mut shares: Vec<(usize, f64)> = Vec::with_capacity(backlogged.len());
        let mut used = 0u64;
        for &l in &backlogged {
            let exact = budget as f64 * weights[l].max(1e-12) / total_w;
            let mut floor = exact.floor() as u64;
            floor = floor.min(u64::from(arrivals[l]));
            alloc[l] = floor;
            used += floor;
            shares.push((l, exact - exact.floor()));
        }
        // Largest remainder for the leftover slots, still capped by demand.
        // Remainders lie in [0, 1), so total_cmp matches partial_cmp here
        // without the unwrap.
        shares.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut leftover = budget.saturating_sub(used);
        while leftover > 0 {
            let mut progressed = false;
            for &(l, _) in &shares {
                if leftover == 0 {
                    break;
                }
                if alloc[l] < u64::from(arrivals[l]) {
                    alloc[l] += 1;
                    leftover -= 1;
                    progressed = true;
                }
            }
            if !progressed {
                break; // every backlogged link fully covered
            }
        }
        alloc
    }

    /// Runs one interval: control phase, then the open-loop schedule.
    ///
    /// # Panics
    ///
    /// Panics if vector lengths or the channel's link count disagree.
    pub fn run_interval(
        &mut self,
        arrivals: &[u32],
        weights: &[f64],
        channel: &mut dyn LossModel,
        rng: &mut SimRng,
    ) -> IntervalOutcome {
        let n = arrivals.len();
        assert_eq!(weights.len(), n, "one weight per link");
        assert_eq!(channel.n_links(), n, "channel link count mismatch");

        let mut outcome = IntervalOutcome::empty(n);
        let mut medium = Medium::new();
        let control = self.timing.slot() * u64::from(self.control_slots);
        let deadline = self.timing.deadline();
        if control >= deadline {
            outcome.leftover = Nanos::ZERO;
            outcome.idle_slots = u64::from(self.control_slots);
            return outcome;
        }
        let airtime = self.timing.data_airtime();
        let budget = (deadline - control) / airtime;
        let alloc = Self::allocate(weights, arrivals, budget);

        let mut now = control;
        outcome.idle_slots = u64::from(self.control_slots);
        for link in 0..n {
            let mut remaining = arrivals[link];
            for _ in 0..alloc[link] {
                if !self.timing.fits(now, airtime) {
                    break;
                }
                if remaining == 0 {
                    // The open-loop flaw: the slot is reserved for this
                    // link, already done — the medium sits idle.
                    now += airtime;
                    continue;
                }
                let tx = medium.transmit(now, &[airtime]);
                outcome.attempts[link] += 1;
                if channel.attempt(LinkId::new(link), rng) {
                    remaining -= 1;
                    outcome.deliveries[link] += 1;
                    outcome.latency_sum[link] += tx.ends_at;
                }
                now = tx.ends_at;
            }
        }

        outcome.busy_time = medium.stats().busy_time;
        outcome.collisions = medium.stats().collisions;
        outcome.leftover = deadline.saturating_sub(now);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtmac_phy::channel::Bernoulli;
    use rtmac_phy::PhyProfile;
    use rtmac_sim::SeedStream;

    fn timing() -> MacTiming {
        MacTiming::new(PhyProfile::ieee80211a(), Nanos::from_millis(20), 1500)
    }

    #[test]
    fn allocation_is_proportional_and_demand_capped() {
        let alloc = FrameCsmaEngine::allocate(&[2.0, 1.0, 1.0], &[10, 10, 10], 8);
        assert_eq!(alloc.iter().sum::<u64>(), 8);
        assert!(alloc[0] >= alloc[1] && alloc[0] >= alloc[2]);
        // Demand caps bind:
        let alloc = FrameCsmaEngine::allocate(&[1.0, 1.0], &[1, 10], 8);
        assert_eq!(alloc[0], 1);
        assert_eq!(alloc[1], 7);
        // No backlog, no allocation.
        assert_eq!(FrameCsmaEngine::allocate(&[1.0], &[0], 8), [0]);
    }

    #[test]
    fn reliable_channel_matches_demand() {
        let mut e = FrameCsmaEngine::new(timing());
        let mut ch = Bernoulli::reliable(3);
        let mut rng = SeedStream::new(1).rng(0);
        let out = e.run_interval(&[5, 5, 5], &[1.0; 3], &mut ch, &mut rng);
        assert_eq!(out.deliveries, [5, 5, 5]);
        assert_eq!(out.collisions, 0);
    }

    #[test]
    fn unreliable_channel_wastes_reserved_slots() {
        // The paper's criticism: with p < 1 the open-loop schedule cannot
        // reassign slots, so total deliveries fall short of what the
        // adaptive centralized policy achieves on the same realization
        // budget. Compare saturated throughput against CentralizedEngine.
        use crate::CentralizedEngine;
        use rtmac_model::Permutation;

        // Under-loaded frame: 20 links × 1 packet = 20 slots of demand
        // against a 61-slot budget at p = 0.5. The frame-based allocation
        // reserves one slot per packet (reliable-channel sizing), so a
        // lost packet is simply lost; the adaptive scheduler retries out
        // of the same budget and delivers nearly everything.
        let n = 20;
        let mut frame = FrameCsmaEngine::new(timing()).with_control_slots(0);
        let mut central = CentralizedEngine::new(timing());
        let order = Permutation::identity(n).service_order();
        let mut ch1 = Bernoulli::new(vec![0.5; n]).unwrap();
        let mut ch2 = Bernoulli::new(vec![0.5; n]).unwrap();
        let seeds = SeedStream::new(5);
        let mut rng1 = seeds.rng(0);
        let mut rng2 = seeds.rng(1);
        let (mut f_total, mut c_total) = (0u64, 0u64);
        for _ in 0..200 {
            f_total += frame
                .run_interval(&[1; 20], &[1.0; 20], &mut ch1, &mut rng1)
                .total_deliveries();
            c_total += central
                .run_interval(&[1; 20], &order, &mut ch2, &mut rng2)
                .total_deliveries();
        }
        assert!(
            f_total < c_total * 70 / 100,
            "frame-based ({f_total}) should clearly trail adaptive ({c_total})"
        );
    }

    #[test]
    fn control_phase_consumes_capacity() {
        let gen = |slots: u32| {
            let mut e = FrameCsmaEngine::new(timing()).with_control_slots(slots);
            let mut ch = Bernoulli::reliable(2);
            let mut rng = SeedStream::new(2).rng(0);
            e.run_interval(&[40, 40], &[1.0, 1.0], &mut ch, &mut rng)
                .total_deliveries()
        };
        let without = gen(0);
        let with = gen(200); // 1.8 ms of control per 20 ms frame
        assert!(with < without, "control overhead must cost slots");
    }

    #[test]
    fn degenerate_control_phase_longer_than_frame() {
        let t = MacTiming::new(PhyProfile::ieee80211a(), Nanos::from_micros(100), 1500);
        let mut e = FrameCsmaEngine::new(t).with_control_slots(1000);
        let mut ch = Bernoulli::reliable(1);
        let mut rng = SeedStream::new(3).rng(0);
        let out = e.run_interval(&[3], &[1.0], &mut ch, &mut rng);
        assert_eq!(out.total_deliveries(), 0);
    }
}
