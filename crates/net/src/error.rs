//! The error type shared by every transport backend and harness.

use std::fmt;

use crate::frame::CodecError;

/// Anything that can go wrong between "scenario in hand" and "report out".
///
/// Configuration and parse problems surface before any node starts;
/// [`NetError::Desync`], [`NetError::Timeout`], and [`NetError::Mismatch`]
/// are runtime verdicts — the first two from a live node's cross-checks,
/// the last from the replay contract.
///
/// # Example
///
/// ```
/// use rtmac_net::{Frame, NetError};
///
/// let err = NetError::from(Frame::decode(b"junk").unwrap_err());
/// assert!(err.to_string().contains("frame"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// The scenario could not be built into a network (invalid parameters,
    /// inconsistent lengths — whatever `rtmac`'s own validation reports).
    Config(String),
    /// A frame failed to decode.
    Codec(CodecError),
    /// A socket operation failed (rendered, so the error stays comparable).
    Io(String),
    /// A peer's per-interval state digest disagrees with the local replica:
    /// the deterministic lockstep has diverged (version skew, differing
    /// scenario, corrupted state).
    Desync {
        /// Interval at which the divergence was detected.
        interval: u64,
        /// The disagreeing peer link.
        link: usize,
        /// What exactly disagreed.
        detail: String,
    },
    /// A node gave up waiting for a peer's frame.
    Timeout {
        /// Interval the node was trying to complete.
        interval: u64,
        /// The first link whose frame never arrived.
        waiting_for: usize,
    },
    /// Two values that must agree do not: a handshake beacon field
    /// disagreeing with the local deployment facts, or — the replay
    /// contract — two backends producing different decision-trace
    /// fingerprints for the same scenario and seed.
    Mismatch {
        /// What was being compared (e.g. `"beacon seed"`,
        /// `"loopback vs sim"`).
        what: String,
        /// The reference fingerprint.
        expected: u64,
        /// The diverging fingerprint.
        got: u64,
    },
    /// The requested operation is outside this layer's scope (e.g.
    /// rendering a fault-injection scenario to a deployment file).
    Unsupported(String),
    /// A deployment scenario file failed to parse.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        msg: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Config(msg) => write!(f, "invalid scenario: {msg}"),
            NetError::Codec(e) => write!(f, "frame codec: {e}"),
            NetError::Io(msg) => write!(f, "transport i/o: {msg}"),
            NetError::Desync {
                interval,
                link,
                detail,
            } => write!(
                f,
                "replica desync at interval {interval} against link {link}: {detail}"
            ),
            NetError::Timeout {
                interval,
                waiting_for,
            } => write!(
                f,
                "timed out at interval {interval} waiting for link {waiting_for}"
            ),
            NetError::Mismatch {
                what,
                expected,
                got,
            } => write!(
                f,
                "{what} mismatch: expected {expected:#018x}, got {got:#018x}"
            ),
            NetError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            NetError::Parse { line, msg } => write!(f, "scenario file line {line}: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<CodecError> for NetError {
    fn from(e: CodecError) -> Self {
        NetError::Codec(e)
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}

impl From<rtmac_model::ConfigError> for NetError {
    fn from(e: rtmac_model::ConfigError) -> Self {
        NetError::Config(e.to_string())
    }
}
