//! The decision trace: a canonical byte stream of everything the protocol
//! decided, folded into one FNV-1a fingerprint.
//!
//! Every backend — the pure simulator, the loopback transport, UDP —
//! produces the same sequence of per-interval activity frames when fed the
//! same scenario and seed. The trace absorbs those frames in canonical
//! order (interval-major, link-minor) by hashing their *encoded wire
//! bytes*, so the fingerprint covers the frame contents **and** the codec:
//! a silent wire-format change shifts every fingerprint and fails the
//! replay contract immediately.
//!
//! The hash is the same FNV-1a fold the batched-kernel equivalence suite
//! pins its goldens with, so one fingerprint vocabulary covers both
//! equivalence layers.

use rtmac_model::Permutation;

use crate::frame::Frame;

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Folds `bytes` into a running FNV-1a hash.
///
/// # Example
///
/// ```
/// use rtmac_net::{fnv1a, FNV_OFFSET};
///
/// let h = fnv1a(FNV_OFFSET, b"claim");
/// assert_ne!(h, FNV_OFFSET);
/// assert_eq!(h, fnv1a(FNV_OFFSET, b"claim"));
/// ```
#[must_use]
pub fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// An order-sensitive fingerprint over a stream of decision frames.
///
/// Callers must absorb frames in canonical order: intervals ascending, and
/// within one interval links ascending. [`crate::LinkNode`] and
/// [`crate::sim_trace`] both do; the replay contract compares the results.
///
/// # Example
///
/// ```
/// use rtmac_net::{Activity, DecisionTrace, Frame};
///
/// let frame = Frame::Idle(Activity {
///     interval: 0, link: 0, rank: 0, backlog: 0,
///     deliveries: 0, attempts: 0, state_digest: 1,
/// });
/// let mut a = DecisionTrace::new();
/// let mut b = DecisionTrace::new();
/// a.absorb(&frame);
/// b.absorb(&frame);
/// assert_eq!(a.fingerprint(), b.fingerprint());
/// assert_eq!(a.frames(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct DecisionTrace {
    hash: u64,
    frames: u64,
    scratch: Vec<u8>,
}

impl DecisionTrace {
    /// An empty trace (fingerprint = the FNV offset basis).
    #[must_use]
    pub fn new() -> Self {
        DecisionTrace {
            hash: FNV_OFFSET,
            frames: 0,
            scratch: Vec::with_capacity(64),
        }
    }

    /// Folds one frame's encoded bytes into the fingerprint.
    pub fn absorb(&mut self, frame: &Frame) {
        self.scratch.clear();
        frame.encode_into(&mut self.scratch);
        self.hash = fnv1a(self.hash, &self.scratch);
        self.frames = self.frames.saturating_add(1);
    }

    /// The fingerprint over everything absorbed so far.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.hash
    }

    /// How many frames have been absorbed.
    #[must_use]
    pub fn frames(&self) -> u64 {
        self.frames
    }
}

impl Default for DecisionTrace {
    fn default() -> Self {
        Self::new()
    }
}

/// Digests one replica's post-interval protocol state: the interval
/// counter, the priority permutation σ (if the policy maintains one), and
/// the bit patterns of every link's delivery debt.
///
/// Each node stamps this digest into its activity frames; receivers
/// compare it against their own replica, so any lockstep divergence —
/// skewed build, different scenario, corrupted state — surfaces as a
/// [`crate::NetError::Desync`] at the exact interval it happens instead of
/// silently producing different decisions.
///
/// # Example
///
/// ```
/// use rtmac_model::Permutation;
/// use rtmac_net::state_digest;
///
/// let sigma = Permutation::identity(3);
/// let debts = [0.5, 0.0, 1.25];
/// let d = state_digest(7, Some(&sigma), &debts);
/// assert_eq!(d, state_digest(7, Some(&sigma), &debts));
/// assert_ne!(d, state_digest(8, Some(&sigma), &debts));
/// ```
#[must_use]
pub fn state_digest(interval: u64, sigma: Option<&Permutation>, debts: &[f64]) -> u64 {
    let mut hash = fnv1a(FNV_OFFSET, &interval.to_le_bytes());
    match sigma {
        Some(sigma) => {
            hash = fnv1a(hash, &[1]);
            for &rank in sigma.priorities() {
                hash = fnv1a(hash, &(rank as u64).to_le_bytes());
            }
        }
        None => hash = fnv1a(hash, &[0]),
    }
    for &debt in debts {
        hash = fnv1a(hash, &debt.to_bits().to_le_bytes());
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Activity;

    fn frame(interval: u64, link: u32) -> Frame {
        Frame::Claim(Activity {
            interval,
            link,
            rank: link,
            backlog: 1,
            deliveries: 1,
            attempts: 1,
            state_digest: 0,
        })
    }

    #[test]
    fn trace_is_order_sensitive() {
        let mut ab = DecisionTrace::new();
        ab.absorb(&frame(0, 0));
        ab.absorb(&frame(0, 1));
        let mut ba = DecisionTrace::new();
        ba.absorb(&frame(0, 1));
        ba.absorb(&frame(0, 0));
        assert_ne!(ab.fingerprint(), ba.fingerprint());
    }

    #[test]
    fn digest_separates_sigma_absence_from_identity() {
        let sigma = Permutation::identity(2);
        assert_ne!(
            state_digest(0, Some(&sigma), &[0.0, 0.0]),
            state_digest(0, None, &[0.0, 0.0])
        );
    }

    #[test]
    fn digest_sees_debt_bit_patterns() {
        assert_ne!(
            state_digest(0, None, &[0.0]),
            state_digest(0, None, &[-0.0]),
            "distinct bit patterns must digest differently"
        );
    }
}
