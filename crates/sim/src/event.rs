//! A stable timed event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Nanos;

/// An entry in the queue: reversed time ordering for the max-heap, with a
/// monotonically increasing sequence number breaking ties so that events
/// scheduled earlier are dispatched earlier (FIFO among equal timestamps).
struct Entry<E> {
    time: Nanos,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of `(time, event)` pairs with stable FIFO ordering among
/// events that share a timestamp.
///
/// Determinism matters: the MAC simulations in this workspace must produce
/// bit-identical results for a given seed, so the dequeue order cannot depend
/// on heap internals.
///
/// # Example
///
/// ```
/// use rtmac_sim::{EventQueue, Nanos};
///
/// let mut q = EventQueue::new();
/// q.schedule(Nanos::from_micros(5), 'b');
/// q.schedule(Nanos::from_micros(5), 'c'); // same time: FIFO after 'b'
/// q.schedule(Nanos::from_micros(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `time`.
    pub fn schedule(&mut self, time: Nanos, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the next event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next_time", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_nanos(30), 3);
        q.schedule(Nanos::from_nanos(10), 1);
        q.schedule(Nanos::from_nanos(20), 2);
        assert_eq!(q.pop(), Some((Nanos::from_nanos(10), 1)));
        assert_eq!(q.pop(), Some((Nanos::from_nanos(20), 2)));
        assert_eq!(q.pop(), Some((Nanos::from_nanos(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Nanos::from_nanos(42), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Nanos::from_nanos(42), i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_nanos(7), ());
        assert_eq!(q.peek_time(), Some(Nanos::from_nanos(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::ZERO, 1);
        q.schedule(Nanos::ZERO, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    proptest! {
        /// Popped timestamps are nondecreasing regardless of insertion order,
        /// and among equal timestamps the original insertion order holds.
        #[test]
        fn prop_stable_time_order(times in proptest::collection::vec(0u64..50, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(Nanos::from_nanos(t), i);
            }
            let mut last: Option<(Nanos, usize)> = None;
            while let Some((t, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(idx > lidx);
                    }
                }
                last = Some((t, idx));
            }
        }
    }
}
