//! The deterministic batch runner: fans [`Scenario`]s out across sweep
//! points × replications on a bounded work-stealing pool.
//!
//! Two properties matter more than raw speed here:
//!
//! * **Bounded fan-out** — a fixed number of workers share the job grid, so
//!   a 10 000-point sweep never spawns 10 000 OS threads. Each worker is
//!   dealt a contiguous index range up front and pops jobs off its front;
//!   when its range drains it steals the upper half of the first non-empty
//!   victim's range. Contiguous ranges keep cache-warm neighbours together
//!   (sweep grids are laid out point-major, so adjacent jobs share a
//!   scenario), and stealing halves keeps the pool balanced even when job
//!   costs are wildly uneven — e.g. an N = 10 000 point next to an N = 10
//!   point in the same sweep.
//! * **Worker-count independence** — every job owns its RNG (seeded from
//!   the scenario, never from thread identity) and writes its result into
//!   its input slot, so the output is bit-identical whether the pool has 1
//!   worker or 64, and no matter which worker stole which range.
//!
//! All shared state goes through the [`crate::sync`] facade rather than
//! `std::sync` directly: in production the facade is a thin passthrough,
//! and under `rtmac-verify sched` the same code runs on a cooperative
//! model scheduler that exhaustively explores worker interleavings
//! (deadlock-freedom, exactly-once retirement, slot write-once and
//! worker-count-independent output are model-checked per interleaving).
//! The [`SchedProbe`] hooks exist for that checker: they observe claim /
//! steal / slot events without perturbing the schedule.
//!
//! Replication seeds derive deterministically from the scenario's base
//! seed: replication 0 *is* the base seed (so a 1-replication run
//! reproduces the historical single-run results exactly), and replication
//! `i > 0` uses `SeedStream::new(base).seed(i)`.
//!
//! # Example
//!
//! ```
//! use rtmac::runner::Runner;
//! use rtmac::scenario;
//!
//! let runner = Runner::new(2);
//! let sc = scenario::tiny(9).with_intervals(50).with_replications(3);
//! let reports = runner.replications(&sc)?;
//! assert_eq!(reports.len(), 3);
//! // Replication 0 is the plain base-seed run.
//! assert_eq!(reports[0], sc.run()?);
//! # Ok::<(), rtmac_model::ConfigError>(())
//! ```

use rtmac_model::ConfigError;
use rtmac_sim::SeedStream;

use crate::scenario::{Scenario, Sweep};
use crate::sync::{run_threads, AtomicUsize, Mutex, Ordering};
use crate::RunReport;

/// Mean/min/max of one metric across a scenario's replications.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesStats {
    /// Sample mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl SeriesStats {
    /// Aggregates a non-empty sample.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    #[must_use]
    pub fn from_values(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "stats need at least one sample");
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        SeriesStats {
            mean: sum / values.len() as f64,
            min,
            max,
        }
    }
}

/// The per-replication seeds of a scenario: the base seed first, then
/// [`SeedStream`]-derived children.
#[must_use]
pub fn replication_seeds(scenario: &Scenario) -> Vec<u64> {
    let stream = SeedStream::new(scenario.seed);
    (0..scenario.replications.max(1))
        .map(|i| {
            if i == 0 {
                scenario.seed
            } else {
                stream.seed(i as u64)
            }
        })
        .collect()
}

/// Observer hooks for the interleaving checker (`rtmac-verify sched`).
///
/// [`Runner::map_probed`] reports scheduling-relevant events through this
/// trait so the model checker can assert exactly-once claims and
/// write-once slots per explored interleaving. Implementations must not
/// touch [`crate::sync`] primitives: probe state is deliberately invisible
/// to the model scheduler so observing an execution does not change the
/// set of interleavings being explored.
///
/// Every method has a no-op default, so production callers pay nothing.
pub trait SchedProbe: Sync {
    /// Worker `worker` claimed job index `index`.
    fn claimed(&self, worker: usize, index: usize) {
        let _ = (worker, index);
    }
    /// Worker `worker` wrote the result slot for job `index`.
    fn slot_written(&self, worker: usize, index: usize) {
        let _ = (worker, index);
    }
    /// Worker `thief` stole range `lo..hi` from `victim`.
    fn stole(&self, thief: usize, victim: usize, lo: usize, hi: usize) {
        let _ = (thief, victim, lo, hi);
    }
    /// Worker `worker` found every range empty and retired.
    fn retired(&self, worker: usize) {
        let _ = worker;
    }
}

/// The probe used by the plain [`Runner::map`] path: observes nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProbe;

impl SchedProbe for NoProbe {}

/// A bounded work-stealing executor for scenario batches.
#[derive(Debug, Clone, Copy)]
pub struct Runner {
    workers: usize,
}

impl Default for Runner {
    /// One worker per available CPU.
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Runner { workers }
    }
}

impl Runner {
    /// A runner with a fixed worker count (clamped to at least 1).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        Runner {
            workers: workers.max(1),
        }
    }

    /// The configured worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Maps `f` over `items` on the work-stealing pool. Results come back
    /// in input order and do not depend on the worker count; at most
    /// `min(workers, items.len())` threads run at once.
    ///
    /// # Panics
    ///
    /// Propagates the first panic from `f`, after every worker has been
    /// joined. A panicking worker does not strand the rest of the batch:
    /// its remaining range is stolen and finished by the surviving
    /// workers before the panic re-raises on the caller, and it cannot
    /// deadlock the pool (range locks are released by unwinding). Only
    /// the panicking job's own result is lost.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        self.map_core(items, f, |_, _| {}, &NoProbe)
    }

    /// [`Runner::map`] with a live progress callback.
    ///
    /// `on_progress(completed, total)` fires after every finished job, from
    /// whichever worker finished it, with a monotone `completed` count (a
    /// shared atomic, so two workers never report the same count). The
    /// callback must not assume any particular completion *order* — jobs
    /// finish in steal order, not input order — only that the count climbs
    /// from 1 to `total`.
    ///
    /// The returned results are identical to [`Runner::map`]: the callback
    /// observes progress but cannot perturb results or their order.
    ///
    /// # Panics
    ///
    /// Propagates a panic from `f` or `on_progress`, under the same
    /// join-first contract as [`Runner::map`].
    pub fn map_with_progress<T, R, F, P>(&self, items: Vec<T>, f: F, on_progress: P) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
        P: Fn(usize, usize) + Sync,
    {
        self.map_core(items, f, on_progress, &NoProbe)
    }

    /// [`Runner::map_with_progress`] with a [`SchedProbe`] observing the
    /// pool's claim/steal/slot events — the entry point the
    /// `rtmac-verify sched` interleaving checker drives. Results are
    /// identical to [`Runner::map`].
    ///
    /// # Panics
    ///
    /// Propagates a panic from `f` or `on_progress`, under the same
    /// join-first contract as [`Runner::map`].
    pub fn map_probed<T, R, F, P, Pb>(
        &self,
        items: Vec<T>,
        f: F,
        on_progress: P,
        probe: &Pb,
    ) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
        P: Fn(usize, usize) + Sync,
        Pb: SchedProbe + ?Sized,
    {
        self.map_core(items, f, on_progress, probe)
    }

    fn map_core<T, R, F, P, Pb>(&self, items: Vec<T>, f: F, on_progress: P, probe: &Pb) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
        P: Fn(usize, usize) + Sync,
        Pb: SchedProbe + ?Sized,
    {
        let n = items.len();
        let workers = self.workers.min(n);
        if workers <= 1 {
            let mut out = Vec::with_capacity(n);
            for (done, item) in items.into_iter().enumerate() {
                probe.claimed(0, done);
                out.push(f(item));
                probe.slot_written(0, done);
                on_progress(done + 1, n);
            }
            probe.retired(0);
            return out;
        }
        // Deal each worker a contiguous index range. Jobs and results live
        // in per-index slots, so whichever worker executes index `i`, the
        // result lands in slot `i`: output order is input order and the
        // steal schedule cannot leak into the results.
        let jobs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let ranges: Vec<Mutex<(usize, usize)>> = (0..workers)
            .map(|w| Mutex::new((w * n / workers, (w + 1) * n / workers)))
            .collect();
        let completed = AtomicUsize::new(0);
        run_threads(workers, |w| loop {
            // Pop the front of our own range; once it drains, steal
            // the upper half of the first non-empty victim (scanning
            // w+1, w+2, … so contention spreads) and adopt it. The own
            // range guard drops at the end of this block, *before* any
            // victim lock is taken: holding it across the steal scan is
            // the lock-in-loop-hold deadlock shape.
            let mut claimed = {
                let mut own = ranges[w].lock();
                (own.0 < own.1).then(|| {
                    let i = own.0;
                    own.0 += 1;
                    i
                })
            };
            if claimed.is_none() {
                for offset in 1..workers {
                    let victim = (w + offset) % workers;
                    let stolen = {
                        let mut other = ranges[victim].lock();
                        (other.0 < other.1).then(|| {
                            // Floor midpoint: a 1-job range is stolen
                            // whole rather than left to ping-pong.
                            let mid = (other.0 + other.1) / 2;
                            let stolen = (mid, other.1);
                            other.1 = mid;
                            stolen
                        })
                    };
                    if let Some((lo, hi)) = stolen {
                        probe.stole(w, victim, lo, hi);
                        *ranges[w].lock() = (lo + 1, hi);
                        claimed = Some(lo);
                        break;
                    }
                }
            }
            // No job of our own and every victim looked empty: any
            // remaining jobs belong to live ranges whose owners will
            // finish them, so this worker can retire.
            let Some(i) = claimed else {
                probe.retired(w);
                break;
            };
            probe.claimed(w, i);
            let item = jobs[i]
                .lock()
                .take()
                // lint: allow(panic-expect) — range bookkeeping hands
                // out each index exactly once; a second claim means
                // memory corruption, so fail loudly rather than skip
                // a job and silently corrupt batch output.
                .expect("job claimed twice");
            let result = f(item);
            *slots[i].lock() = Some(result);
            probe.slot_written(w, i);
            // lint: allow(relaxed-ordering-audit) — `completed` is the
            // progress counter and nothing else: fetch_add's atomicity
            // alone guarantees unique, monotone `done` values, and result
            // visibility is ordered by the per-index slot mutexes plus the
            // run_threads join, so the counter needs no ordering of its
            // own.
            let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
            on_progress(done, n);
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    // lint: allow(panic-expect) — run_threads joined every
                    // worker (propagating any panic), and a worker only
                    // retires when every range is drained, so each slot was
                    // filled; an empty slot would silently misalign results
                    // with inputs, so fail loudly instead.
                    .expect("worker completed every claimed job")
            })
            .collect()
    }

    /// Runs every replication of `scenario` (seeds from
    /// [`replication_seeds`]) and returns the reports in replication order.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] if the scenario is invalid.
    ///
    /// # Panics
    ///
    /// Propagates panics from worker threads, and panics if a worker
    /// retires without filling a claimed result slot — a runner invariant
    /// violation that would otherwise silently misalign results with
    /// replications.
    pub fn replications(&self, scenario: &Scenario) -> Result<Vec<RunReport>, ConfigError> {
        self.map(replication_seeds(scenario), |seed| {
            scenario
                .network_with_seed(seed)
                .map(|mut net| net.run(scenario.intervals))
        })
        .into_iter()
        .collect()
    }

    /// Fans a sweep out across points × replications and aggregates
    /// `metric` into one [`SeriesStats`] per point.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] if a sweep point is invalid.
    ///
    /// # Panics
    ///
    /// As [`Runner::replications`]: propagates worker panics and fails
    /// loudly on an unfilled result slot. Also panics if a sweep axis
    /// mismatches the base scenario's traffic kind (see [`Sweep::at`]).
    pub fn series<F>(&self, sweep: &Sweep, metric: F) -> Result<Vec<SeriesStats>, ConfigError>
    where
        F: Fn(&RunReport) -> f64 + Sync,
    {
        let scenarios = sweep.scenarios();
        let jobs: Vec<(usize, u64)> = scenarios
            .iter()
            .enumerate()
            .flat_map(|(i, sc)| replication_seeds(sc).into_iter().map(move |s| (i, s)))
            .collect();
        let values: Vec<Result<f64, ConfigError>> = self.map(jobs.clone(), |(i, seed)| {
            scenarios[i]
                .network_with_seed(seed)
                .map(|mut net| metric(&net.run(scenarios[i].intervals)))
        });
        let mut per_point: Vec<Vec<f64>> = vec![Vec::new(); scenarios.len()];
        for ((i, _), value) in jobs.into_iter().zip(values) {
            per_point[i].push(value?);
        }
        Ok(per_point
            .iter()
            .map(|values| SeriesStats::from_values(values))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{self, PolicySpec};

    #[test]
    fn map_preserves_order_and_bounds_threads() {
        let runner = Runner::new(3);
        let out = runner.map((0..64).collect(), |x: i32| x * x);
        assert_eq!(out, (0..64).map(|x| x * x).collect::<Vec<i32>>());
        // Degenerate pools still work.
        assert_eq!(Runner::new(0).workers(), 1);
        assert!(Runner::new(5).map(Vec::<i32>::new(), |x| x).is_empty());
    }

    #[test]
    fn map_with_progress_reports_every_completion() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let high_water = AtomicUsize::new(0);
        let calls = AtomicUsize::new(0);
        let out = Runner::new(4).map_with_progress(
            (0..97).collect(),
            |x: u64| x + 1,
            |done, total| {
                assert_eq!(total, 97);
                assert!(done >= 1 && done <= total);
                high_water.fetch_max(done, Ordering::Relaxed);
                calls.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(out, (1..=97).collect::<Vec<u64>>());
        // Exactly one callback per job, and the count reached the total.
        assert_eq!(calls.load(Ordering::Relaxed), 97);
        assert_eq!(high_water.load(Ordering::Relaxed), 97);
    }

    #[test]
    fn map_balances_skewed_job_costs_via_stealing() {
        // All the slow jobs sit in one worker's initial contiguous range;
        // stealing must still produce input-ordered, correct results.
        let items: Vec<u32> = (0..40).collect();
        let out = Runner::new(4).map(items, |x| {
            if x < 10 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x * 3
        });
        assert_eq!(out, (0..40).map(|x| x * 3).collect::<Vec<u32>>());
    }

    #[test]
    fn map_propagates_worker_panic_after_finishing_other_jobs() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // The documented contract on Runner::map: a panicking job
        // surfaces its payload on the caller, the pool neither deadlocks
        // nor strands work, and every *other* job still executes (the
        // panicking worker's remaining range is stolen by survivors).
        let executed = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Runner::new(3).map((0..24).collect::<Vec<usize>>(), |x| {
                executed.fetch_add(1, Ordering::SeqCst);
                assert!(x != 11, "job 11 exploded");
                x
            });
        }));
        let payload = result.expect_err("the job panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .expect("assert! with a literal message panics with a &str payload");
        assert!(msg.contains("job 11 exploded"), "got: {msg}");
        // All 24 jobs entered `f` (the panicking one counts itself
        // before unwinding): no job was silently dropped.
        assert_eq!(executed.load(Ordering::SeqCst), 24);
    }

    #[test]
    fn map_probed_reports_claims_and_slots() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct Counting {
            claims: Vec<AtomicUsize>,
            writes: Vec<AtomicUsize>,
            retired: AtomicUsize,
        }
        impl SchedProbe for Counting {
            fn claimed(&self, _worker: usize, index: usize) {
                self.claims[index].fetch_add(1, Ordering::SeqCst);
            }
            fn slot_written(&self, _worker: usize, index: usize) {
                self.writes[index].fetch_add(1, Ordering::SeqCst);
            }
            fn retired(&self, _worker: usize) {
                self.retired.fetch_add(1, Ordering::SeqCst);
            }
        }
        let n = 23;
        let probe = Counting {
            claims: (0..n).map(|_| AtomicUsize::new(0)).collect(),
            writes: (0..n).map(|_| AtomicUsize::new(0)).collect(),
            retired: AtomicUsize::new(0),
        };
        let out =
            Runner::new(4).map_probed((0..n).collect::<Vec<usize>>(), |x| x + 1, |_, _| {}, &probe);
        assert_eq!(out, (1..=n).collect::<Vec<usize>>());
        for i in 0..n {
            assert_eq!(probe.claims[i].load(Ordering::SeqCst), 1, "claim {i}");
            assert_eq!(probe.writes[i].load(Ordering::SeqCst), 1, "write {i}");
        }
        assert_eq!(probe.retired.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn replication_zero_is_the_base_seed() {
        let sc = scenario::tiny(42).with_replications(4);
        let seeds = replication_seeds(&sc);
        assert_eq!(seeds.len(), 4);
        assert_eq!(seeds[0], 42);
        // Derived seeds are distinct from each other and the base.
        for (i, &s) in seeds.iter().enumerate() {
            for &t in &seeds[i + 1..] {
                assert_ne!(s, t);
            }
        }
    }

    #[test]
    fn runner_output_is_worker_count_independent() {
        // The satellite determinism check: the fig3 sweep (at its
        // bench seed, shortened horizon) must produce identical reports
        // under 1 worker and many workers.
        let sweep = scenario::fig3(30, 2018);
        let scenarios: Vec<_> = sweep
            .scenarios()
            .into_iter()
            .map(|sc| sc.with_policy(PolicySpec::Ldf))
            .collect();
        let run = |workers: usize| -> Vec<RunReport> {
            Runner::new(workers).map(scenarios.clone(), |sc| sc.run().expect("valid scenario"))
        };
        let single = run(1);
        let pooled = run(4);
        assert_eq!(single, pooled);
    }

    #[test]
    fn series_aggregates_replications() {
        let sweep = scenario::Sweep {
            name: "test",
            base: scenario::tiny(5).with_intervals(40).with_replications(3),
            axis: scenario::Axis::Ratio,
            points: vec![0.5, 0.9],
            shape: None,
        };
        let stats = Runner::new(2)
            .series(&sweep, |r| r.final_total_deficiency)
            .unwrap();
        assert_eq!(stats.len(), 2);
        for s in stats {
            assert!(s.min <= s.mean && s.mean <= s.max);
        }
    }

    #[test]
    fn series_surfaces_config_errors() {
        let sweep = scenario::Sweep {
            name: "bad",
            base: scenario::tiny(5),
            axis: scenario::Axis::SuccessProbability,
            points: vec![1.5],
            shape: None,
        };
        assert!(Runner::new(2)
            .series(&sweep, |r| r.final_total_deficiency)
            .is_err());
    }

    #[test]
    fn stats_from_values() {
        let s = SeriesStats::from_values(&[2.0, 1.0, 3.0]);
        assert_eq!((s.mean, s.min, s.max), (2.0, 1.0, 3.0));
    }
}
