//! Fixture: crate root missing `#![forbid(unsafe_code)]` and
//! `#![warn(missing_docs)]`.

/// Does nothing.
pub fn nothing() {}
