//! Offline drop-in subset of the `criterion` API.
//!
//! The workspace builds hermetically with no crates.io access, so the real
//! `criterion` dev-dependency is replaced by this vendored crate. It keeps
//! the macro and type surface the benches use — `criterion_group!` (both the
//! positional and `name/config/targets` forms), `criterion_main!`,
//! `Criterion::bench_function`, and benchmark groups — and implements a
//! simple measured loop: each benchmark is warmed up once, then timed over
//! `sample_size` batches, reporting the mean and min/max time per iteration.
//!
//! Omitted relative to real criterion: statistical outlier analysis, HTML
//! reports, baselines, and command-line filtering.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Top-level benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark collects.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run a single benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, &mut f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Finish the group (report boundary; no-op beyond symmetry with the
    /// real API).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; drives the timed iteration loop.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    mode: Mode,
}

enum Mode {
    /// Calibration pass: run once, record the elapsed time.
    Calibrate,
    /// Measurement pass: run `iters_per_sample` iterations per sample.
    Measure,
}

impl Bencher {
    /// Time the routine. Criterion-style: the routine runs many times; its
    /// return value is passed through [`black_box`] so it is not optimized
    /// away.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        match self.mode {
            Mode::Calibrate => {
                let start = Instant::now();
                black_box(routine());
                self.samples.push(start.elapsed());
            }
            Mode::Measure => {
                let start = Instant::now();
                for _ in 0..self.iters_per_sample {
                    black_box(routine());
                }
                self.samples.push(start.elapsed());
            }
        }
    }
}

/// Re-export of the standard hint; real criterion exposes the same name.
pub use std::hint::black_box;

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) {
    // Calibration: one untimed-ish pass to size the measurement batches so a
    // sample takes roughly a millisecond (bounded to keep total time sane).
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        mode: Mode::Calibrate,
    };
    f(&mut bencher);
    let calibrated = bencher.samples.first().copied().unwrap_or_default();
    let target = Duration::from_millis(1);
    let iters = if calibrated.is_zero() {
        1000
    } else {
        (target.as_nanos() / calibrated.as_nanos().max(1)).clamp(1, 1000) as u64
    };

    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: iters,
        mode: Mode::Measure,
    };
    for _ in 0..sample_size {
        f(&mut bencher);
    }

    let per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / iters as f64)
        .collect();
    let mean = per_iter.iter().sum::<f64>() / per_iter.len().max(1) as f64;
    let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().copied().fold(0.0f64, f64::max);
    println!(
        "{id:<48} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Define a benchmark group function (both real-criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        // Bench harness entry points are not public API; real criterion's
        // expansion is exempt from missing_docs the same way.
        #[allow(missing_docs)]
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bench(c: &mut Criterion) {
        c.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    criterion_group!(benches, quick_bench);

    #[test]
    fn group_and_bencher_run() {
        benches();
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        let mut runs = 0u32;
        g.bench_function("counted", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        assert!(runs > 0);
    }
}
