//! Fixture: the nondeterministic-iter rule.

use std::collections::HashMap;

/// Iterates a hash map; the visit order varies per process.
pub fn sum_values(m: &HashMap<u32, u32>) -> u32 {
    m.values().copied().sum()
}
