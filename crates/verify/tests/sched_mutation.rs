//! Mutation testing of the interleaving checker: seeded concurrency
//! faults in a mirror of the runner's work-stealing loop must be
//! convicted, each under the property it actually breaks, while the
//! faithful mirror and the real [`rtmac::Runner`] pass the identical
//! exploration. This is the evidence that the checker's verdicts carry
//! information — a checker that passes everything proves nothing.
//!
//! Every conviction also replays: the counterexample's decision schedule
//! reproduces the violation on a fresh faulty pool.

use rtmac::runner::SchedProbe;
use rtmac::sync::{run_threads, Mutex, Ordering};
use rtmac_verify::{
    explore, replay_schedule, RunnerSubject, SchedConfig, SchedProperty, SchedSubject,
};

/// The seeded concurrency faults. Each is a small, realistic slip in the
/// work-stealing loop — the kind a refactor could introduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    /// Faithful mirror of the runner's loop; must pass.
    None,
    /// Holds the worker's own range lock across the whole victim scan —
    /// the `lock-in-loop-hold` lint shape. Two workers stealing from
    /// each other deadlock.
    HoldOwnWhileStealing,
    /// Reads the own-range bounds under the lock, drops the guard, then
    /// re-locks and writes the popped front back. A steal between the
    /// read and the write-back races the stale bounds: both workers
    /// claim the same index.
    DroppedRangeLock,
    /// The thief takes the upper half but forgets to shrink the victim's
    /// range. Stolen jobs re-execute, and a drained thief re-steals the
    /// never-shrinking range forever — a livelock.
    DoubleSteal,
    /// Off-by-one on the steal boundary: the victim keeps up to
    /// `mid + 1` while the thief takes `mid..hi`. The overlap
    /// double-executes, and short ranges stop shrinking — a livelock.
    OverlappingSteal,
    /// Replaces the progress counter's `fetch_add` with a load/store
    /// pair. Interleaved updates tear, so completions are lost.
    TornProgressUpdate,
    /// Routes the last job's result into its neighbour's slot: one slot
    /// is written twice and one never.
    MisroutedSlot,
    /// Mixes the worker id into the result, leaking the steal schedule
    /// into the output.
    WorkerIdInResult,
}

impl Fault {
    fn expected_property(self) -> SchedProperty {
        match self {
            Fault::None => unreachable!("the faithful mirror must pass"),
            // The broken steals livelock before any double-claim is
            // observable: the victim's range never shrinks, so a drained
            // thief re-steals it forever.
            Fault::HoldOwnWhileStealing | Fault::DoubleSteal | Fault::OverlappingSteal => {
                SchedProperty::DeadlockFree
            }
            Fault::DroppedRangeLock | Fault::TornProgressUpdate => SchedProperty::ExactlyOnce,
            Fault::MisroutedSlot => SchedProperty::SlotWriteOnce,
            Fault::WorkerIdInResult => SchedProperty::OutputDeterminism,
        }
    }
}

/// A mirror of [`rtmac::Runner`]'s parallel `map` loop over the same
/// `rtmac::sync` facade, with one seeded fault. Mirrors rather than
/// wraps: faults must live inside the claim/steal/retire logic, which
/// the real runner (correctly) does not expose.
struct FaultyPool {
    fault: Fault,
}

impl SchedSubject for FaultyPool {
    fn run(
        &self,
        workers: usize,
        jobs: usize,
        f: &(dyn Fn(usize) -> usize + Sync),
        on_progress: &(dyn Fn(usize, usize) + Sync),
        probe: &dyn SchedProbe,
    ) -> Vec<usize> {
        assert!(
            workers >= 2 && jobs >= workers,
            "mirror covers the parallel path"
        );
        let n = jobs;
        let job_cells: Vec<Mutex<Option<usize>>> = (0..n).map(|i| Mutex::new(Some(i))).collect();
        let slots: Vec<Mutex<Option<usize>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let ranges: Vec<Mutex<(usize, usize)>> = (0..workers)
            .map(|w| Mutex::new((w * n / workers, (w + 1) * n / workers)))
            .collect();
        let completed = rtmac::sync::AtomicUsize::new(0);
        let fault = self.fault;
        run_threads(workers, |w| loop {
            let mut claimed = if fault == Fault::DroppedRangeLock {
                // Read the bounds, drop the guard, write back later: the
                // gap races concurrent steals.
                let (lo, hi) = {
                    let own = ranges[w].lock();
                    (own.0, own.1)
                };
                (lo < hi).then(|| {
                    ranges[w].lock().0 = lo + 1;
                    lo
                })
            } else if fault == Fault::HoldOwnWhileStealing {
                let mut own = ranges[w].lock();
                let mut claimed = (own.0 < own.1).then(|| {
                    let i = own.0;
                    own.0 += 1;
                    i
                });
                if claimed.is_none() {
                    // Victim scan while still holding `own` — the
                    // deadlock the lock-in-loop-hold lint exists for.
                    for offset in 1..workers {
                        let victim = (w + offset) % workers;
                        let mut other = ranges[victim].lock();
                        if other.0 < other.1 {
                            let mid = (other.0 + other.1) / 2;
                            let (lo, hi) = (mid, other.1);
                            other.1 = mid;
                            probe.stole(w, victim, lo, hi);
                            *own = (lo + 1, hi);
                            claimed = Some(lo);
                            break;
                        }
                    }
                }
                claimed
            } else {
                let mut own = ranges[w].lock();
                (own.0 < own.1).then(|| {
                    let i = own.0;
                    own.0 += 1;
                    i
                })
            };
            if claimed.is_none() && fault != Fault::HoldOwnWhileStealing {
                for offset in 1..workers {
                    let victim = (w + offset) % workers;
                    let stolen = {
                        let mut other = ranges[victim].lock();
                        (other.0 < other.1).then(|| {
                            let mid = (other.0 + other.1) / 2;
                            let stolen = (mid, other.1);
                            match fault {
                                // Forgets to shrink the victim at all.
                                Fault::DoubleSteal => {}
                                // Off-by-one: the victim keeps `mid`.
                                Fault::OverlappingSteal => other.1 = (mid + 1).min(other.1),
                                _ => other.1 = mid,
                            }
                            stolen
                        })
                    };
                    if let Some((lo, hi)) = stolen {
                        probe.stole(w, victim, lo, hi);
                        *ranges[w].lock() = (lo + 1, hi);
                        claimed = Some(lo);
                        break;
                    }
                }
            }
            let Some(i) = claimed else {
                probe.retired(w);
                break;
            };
            probe.claimed(w, i);
            // No `expect` here: a double-claim must surface as a checker
            // conviction (claims != 1), not as a mirror panic.
            let Some(item) = job_cells[i].lock().take() else {
                continue;
            };
            let result = match fault {
                Fault::WorkerIdInResult => f(item) + w,
                _ => f(item),
            };
            let target = match fault {
                Fault::MisroutedSlot if i == n - 1 => n - 2,
                _ => i,
            };
            *slots[target].lock() = Some(result);
            probe.slot_written(w, target);
            let done = if fault == Fault::TornProgressUpdate {
                // Torn read-modify-write: a concurrent completion between
                // the load and the store is lost.
                let d = completed.load(Ordering::SeqCst) + 1;
                completed.store(d, Ordering::SeqCst);
                d
            } else {
                completed.fetch_add(1, Ordering::SeqCst) + 1
            };
            on_progress(done, n);
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().unwrap_or(usize::MAX))
            .collect()
    }
}

fn cfg() -> SchedConfig {
    SchedConfig::new(2, 4, 2)
}

/// The full conviction pipeline for one fault: the explorer catches it
/// under the expected property, the recorded schedule replays to the
/// same verdict on a fresh faulty pool, and the schedule is non-trivial.
fn convict(fault: Fault) {
    let cfg = cfg();
    let ce =
        explore(&FaultyPool { fault }, &cfg).expect_err(&format!("{fault:?} must be convicted"));
    assert_eq!(
        ce.property,
        fault.expected_property(),
        "{fault:?} convicted under the wrong property: {}",
        ce.detail
    );
    assert!(
        !ce.schedule.is_empty(),
        "{fault:?}: a conviction needs a non-empty decision schedule"
    );
    let again = replay_schedule(&FaultyPool { fault }, &cfg, &ce.schedule)
        .expect_err("the recorded schedule must reproduce the violation");
    assert_eq!(
        again.property, ce.property,
        "{fault:?}: replay reached a different verdict"
    );
}

#[test]
fn the_faithful_mirror_passes_the_exploration() {
    let stats =
        explore(&FaultyPool { fault: Fault::None }, &cfg()).expect("the faithful mirror must pass");
    assert!(stats.complete, "the bounded search must drain its frontier");
}

#[test]
fn the_real_runner_passes_the_identical_exploration() {
    let stats = explore(&RunnerSubject, &cfg()).expect("the real runner must pass");
    assert!(stats.complete);
}

#[test]
fn convicts_lock_held_across_the_steal_scan_as_deadlock() {
    convict(Fault::HoldOwnWhileStealing);
}

#[test]
fn convicts_a_dropped_range_lock_as_a_double_claim() {
    convict(Fault::DroppedRangeLock);
}

#[test]
fn convicts_a_double_steal_as_a_livelock() {
    convict(Fault::DoubleSteal);
}

#[test]
fn convicts_an_overlapping_steal_as_a_livelock() {
    convict(Fault::OverlappingSteal);
}

#[test]
fn convicts_a_torn_progress_update_as_a_lost_completion() {
    convict(Fault::TornProgressUpdate);
}

#[test]
fn convicts_a_misrouted_slot_write() {
    convict(Fault::MisroutedSlot);
}

#[test]
fn convicts_worker_identity_leaking_into_results() {
    convict(Fault::WorkerIdInResult);
}
