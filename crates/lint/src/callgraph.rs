//! The workspace-wide call graph (DESIGN.md §13).
//!
//! Built on [`crate::items`]: every function item in every walked file
//! becomes a node; edges come from a token-level scan of each body for
//! call shapes (`free(`, `Type::assoc(`, `.method(`) and bare function
//! references (fn pointers passed as values). Resolution is name-based
//! and deliberately over-approximate — a `.step(` call edges to *every*
//! workspace method named `step` (the trait-call approximation), and a
//! bare mention of a known function name in value position counts as a
//! reference — because the reachability rules built on top need soundness
//! in one direction: a call path that exists in the program must exist in
//! the graph. Calls into external crates (`std`, vendored deps) resolve
//! to nothing; their allocation/panic behavior is covered by the direct
//! token classes of the rules themselves.

use crate::items::{self, FnItem};
use crate::syntax::{Syntax, TokKind};
use crate::tokenize::SourceFile;

/// One lexed and token-scanned workspace source file.
pub struct FileUnit {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// The masked line view.
    pub file: SourceFile,
    /// The matched token stream.
    pub syn: Syntax,
}

/// A call-graph node: one function item in one file.
pub struct FnNode {
    /// Index into the unit list.
    pub file: usize,
    /// The parsed item.
    pub item: FnItem,
}

/// A resolved call or reference edge, anchored at its call site.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Callee node index.
    pub to: usize,
    /// 1-based line of the call site.
    pub line: usize,
    /// 1-based column of the call site.
    pub col: usize,
}

/// The workspace call graph.
pub struct Graph {
    /// All function nodes, in (file, token) order.
    pub nodes: Vec<FnNode>,
    /// Out-edges per node.
    pub edges: Vec<Vec<Edge>>,
    /// Nodes referenced by name *outside* any function body (macro
    /// invocations like `criterion_group!`, re-exports, const
    /// initializers) — treated as externally reachable.
    pub top_refs: Vec<bool>,
    /// Per file: `(body_start, body_end, node)` sorted by start token.
    bodies_by_file: Vec<Vec<(usize, usize, usize)>>,
}

/// Keywords that can never be call heads or function references.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern",
    "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true", "type",
    "unsafe", "use", "where", "while",
];

/// Whether an identifier token is a Rust keyword (never a call head,
/// function reference, or indexable expression tail).
#[must_use]
pub fn ident_is_keyword(text: &str) -> bool {
    KEYWORDS.contains(&text)
}

/// Method names that collide with the std prelude (`Iterator`, `Option`,
/// `Result`, `Vec`, integer intrinsics, `thread_local!`'s `with`). A
/// `.map(` call is almost always `Iterator::map`, not a workspace method
/// that happens to share the name — resolving it to every workspace
/// `map` drags unrelated subsystems into every reachability query. For
/// these names the broad fallback is disabled: only `self.name()` calls
/// inside the owning impl and qualified `Type::name(` calls resolve.
/// This is the documented precision/soundness trade of DESIGN.md §13 —
/// a cross-type call to a workspace method with one of these names is
/// invisible to the graph.
const PRELUDE_METHODS: &[&str] = &[
    "all",
    "and_then",
    "any",
    "clear",
    "clone",
    "cmp",
    "collect",
    "contains",
    "count",
    "default",
    "drain",
    "eq",
    "expect",
    "extend",
    "filter",
    "find",
    "first",
    "fmt",
    "fold",
    "for_each",
    "from",
    "get",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "iter",
    "last",
    "len",
    "map",
    "max",
    "min",
    "next",
    "or_else",
    "parse",
    "pop",
    "position",
    "push",
    "remove",
    "replace",
    "retain",
    "rev",
    "skip",
    "sum",
    "swap",
    "take",
    "unwrap",
    "unwrap_or",
    "with",
    "zip",
];

impl Graph {
    /// Builds the call graph over every file unit.
    #[must_use]
    pub fn build(units: &[FileUnit]) -> Self {
        let mut nodes = Vec::new();
        let mut bodies_by_file = Vec::with_capacity(units.len());
        for (fi, unit) in units.iter().enumerate() {
            let mut bodies = Vec::new();
            for item in items::parse(&unit.file, &unit.syn) {
                if let Some((s, e)) = item.body {
                    bodies.push((s, e, nodes.len()));
                }
                nodes.push(FnNode { file: fi, item });
            }
            bodies.sort_unstable();
            bodies_by_file.push(bodies);
        }
        let mut graph = Graph {
            edges: vec![Vec::new(); nodes.len()],
            top_refs: vec![false; nodes.len()],
            nodes,
            bodies_by_file,
        };
        let tables = NameTables::build(&graph.nodes);
        for n in 0..graph.nodes.len() {
            graph.edges[n] = graph.extract_edges(units, &tables, n);
        }
        graph.mark_top_refs(units, &tables);
        graph
    }

    /// Calls `f(k)` for every token index in node `n`'s body, excluding
    /// the bodies of functions nested inside it (their tokens belong to
    /// the nested item).
    pub fn for_body_tokens(&self, n: usize, mut f: impl FnMut(usize)) {
        let node = &self.nodes[n];
        let Some((b0, b1)) = node.item.body else {
            return;
        };
        let nested: Vec<(usize, usize)> = self.bodies_by_file[node.file]
            .iter()
            .filter(|&&(s, e, ni)| ni != n && s > b0 && e < b1)
            .map(|&(s, e, _)| (s, e))
            .collect();
        let mut k = b0 + 1;
        while k < b1 {
            if let Some(&(_, e)) = nested.iter().find(|&&(s, _)| s == k) {
                k = e + 1;
                continue;
            }
            f(k);
            k += 1;
        }
    }

    /// The `Owner::name` label of node `n`.
    #[must_use]
    pub fn name_of(&self, n: usize) -> String {
        self.nodes[n].item.qualified()
    }

    fn extract_edges(&self, units: &[FileUnit], tables: &NameTables, n: usize) -> Vec<Edge> {
        let node = &self.nodes[n];
        let toks = &units[node.file].syn.tokens;
        let owner = node.item.owner.as_deref();
        let mut edges: Vec<Edge> = Vec::new();
        let push = |targets: &[usize], line: usize, col: usize, edges: &mut Vec<Edge>| {
            for &to in targets {
                if !edges.iter().any(|e| e.to == to) {
                    edges.push(Edge { to, line, col });
                }
            }
        };
        self.for_body_tokens(n, |k| {
            let t = &toks[k];
            if t.kind != TokKind::Ident || ident_is_keyword(&t.text) {
                return;
            }
            let name = t.text.as_str();
            let prev = if k > 0 { toks[k - 1].text.as_str() } else { "" };
            let next = toks.get(k + 1).map_or("", |t| t.text.as_str());
            if next == "!" {
                return; // macro invocation, not a function
            }
            if prev == "." {
                if next == "(" {
                    let recv_self = k >= 2 && toks[k - 2].text == "self";
                    push(
                        &tables.resolve_method(name, recv_self, owner),
                        t.line,
                        t.col,
                        &mut edges,
                    );
                }
                return; // field access otherwise
            }
            if prev == "::" {
                // Only the final, invoked segment of a path resolves; a
                // turbofish (`f::<T>(`) still counts as an invocation.
                let invoked =
                    next == "(" || (next == "::" && toks.get(k + 2).is_some_and(|t| t.text == "<"));
                if !invoked {
                    return;
                }
                let qual = (k >= 2).then(|| toks[k - 2].text.as_str());
                match qual {
                    Some(q) if q == "Self" || q.chars().next().is_some_and(char::is_uppercase) => {
                        push(
                            &tables.resolve_assoc(q, name, owner),
                            t.line,
                            t.col,
                            &mut edges,
                        );
                    }
                    _ => push(&tables.resolve_free(name), t.line, t.col, &mut edges),
                }
                return;
            }
            if next == "(" {
                if prev != "fn" {
                    push(&tables.resolve_free(name), t.line, t.col, &mut edges);
                }
                return;
            }
            // Bare reference in value position (fn pointer): a known free
            // function name terminating an expression. A `'` prefix is a
            // loop label or lifetime, never a reference.
            if matches!(next, "," | ")" | ";" | "]" | "}") && prev != "fn" && prev != "'" {
                push(&tables.resolve_free(name), t.line, t.col, &mut edges);
            }
        });
        edges
    }

    /// Marks nodes whose name appears outside every function body — in
    /// macro invocations, const initializers, or `use` re-exports.
    fn mark_top_refs(&mut self, units: &[FileUnit], tables: &NameTables) {
        for (fi, unit) in units.iter().enumerate() {
            let bodies = &self.bodies_by_file[fi];
            let toks = &unit.syn.tokens;
            let mut k = 0;
            while k < toks.len() {
                if let Some(&(_, e, _)) = bodies.iter().find(|&&(s, _, _)| s == k) {
                    k = e + 1;
                    continue;
                }
                let t = &toks[k];
                if t.kind == TokKind::Ident && !ident_is_keyword(&t.text) {
                    let prev = if k > 0 { toks[k - 1].text.as_str() } else { "" };
                    if prev != "fn" {
                        for to in tables
                            .resolve_free(&t.text)
                            .iter()
                            .chain(tables.resolve_method(&t.text, false, None).iter())
                        {
                            self.top_refs[*to] = true;
                        }
                    }
                }
                k += 1;
            }
        }
    }
}

/// Deterministic name-to-node lookup tables.
struct NameTables {
    free: std::collections::BTreeMap<String, Vec<usize>>,
    methods: std::collections::BTreeMap<String, Vec<usize>>,
    assoc: std::collections::BTreeMap<(String, String), Vec<usize>>,
}

impl NameTables {
    fn build(nodes: &[FnNode]) -> Self {
        let mut free: std::collections::BTreeMap<String, Vec<usize>> = Default::default();
        let mut methods: std::collections::BTreeMap<String, Vec<usize>> = Default::default();
        let mut assoc: std::collections::BTreeMap<(String, String), Vec<usize>> =
            Default::default();
        for (i, node) in nodes.iter().enumerate() {
            match &node.item.owner {
                None => free.entry(node.item.name.clone()).or_default().push(i),
                Some(owner) => {
                    methods.entry(node.item.name.clone()).or_default().push(i);
                    assoc
                        .entry((owner.clone(), node.item.name.clone()))
                        .or_default()
                        .push(i);
                }
            }
        }
        NameTables {
            free,
            methods,
            assoc,
        }
    }

    fn resolve_free(&self, name: &str) -> Vec<usize> {
        self.free.get(name).cloned().unwrap_or_default()
    }

    /// `.name(` method calls: every impl/trait fn with that name. A
    /// `self.name(` call with a match in the current owner narrows to it;
    /// [`PRELUDE_METHODS`] names resolve *only* through that narrowing.
    fn resolve_method(&self, name: &str, recv_self: bool, owner: Option<&str>) -> Vec<usize> {
        if recv_self {
            if let Some(owner) = owner {
                let key = (owner.to_string(), name.to_string());
                if let Some(own) = self.assoc.get(&key) {
                    return own.clone();
                }
            }
        }
        if PRELUDE_METHODS.contains(&name) {
            return Vec::new();
        }
        self.methods.get(name).cloned().unwrap_or_default()
    }

    /// `Type::name(` associated calls; `Self::name(` resolves through the
    /// current owner. Unknown types (e.g. `Vec::new`) resolve to nothing.
    fn resolve_assoc(&self, qual: &str, name: &str, owner: Option<&str>) -> Vec<usize> {
        let ty = if qual == "Self" {
            match owner {
                Some(o) => o,
                None => return Vec::new(),
            }
        } else {
            qual
        };
        self.assoc
            .get(&(ty.to_string(), name.to_string()))
            .cloned()
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::lex;

    fn unit(rel: &str, src: &str) -> FileUnit {
        let file = lex(src);
        let syn = crate::syntax::scan(&file);
        FileUnit {
            rel: rel.to_string(),
            file,
            syn,
        }
    }

    fn edge_names(g: &Graph, from: &str) -> Vec<String> {
        let n = g
            .nodes
            .iter()
            .position(|x| x.item.qualified() == from)
            .expect("node exists");
        g.edges[n].iter().map(|e| g.name_of(e.to)).collect()
    }

    #[test]
    fn free_assoc_and_method_calls_resolve() {
        let g = Graph::build(&[unit(
            "a.rs",
            "struct Engine;\n\
             impl Engine {\n    \
                 pub fn run(&mut self) {\n        self.step();\n        helper(3);\n        \
                     Engine::reset(self);\n    }\n    \
                 fn step(&mut self) {}\n    fn reset(&mut self) {}\n}\n\
             fn helper(x: u32) -> u32 { x }\n",
        )]);
        assert_eq!(
            edge_names(&g, "Engine::run"),
            ["Engine::step", "helper", "Engine::reset"]
        );
    }

    #[test]
    fn cross_file_free_calls_and_module_qualifiers_resolve() {
        let g = Graph::build(&[
            unit("a.rs", "pub fn caller() { beta::fill(); }\n"),
            unit("b.rs", "pub fn fill() { grow(); }\nfn grow() {}\n"),
        ]);
        assert_eq!(edge_names(&g, "caller"), ["fill"]);
        assert_eq!(edge_names(&g, "fill"), ["grow"]);
    }

    #[test]
    fn method_calls_over_unknown_receivers_use_the_trait_approximation() {
        let g = Graph::build(&[unit(
            "a.rs",
            "trait Subject { fn step(&mut self); }\n\
             struct A;\nimpl A { fn step(&mut self) {} }\n\
             fn drive(s: &mut A) { s.step(); }\n",
        )]);
        // Both the trait signature (bodyless) and the impl are targets.
        assert_eq!(edge_names(&g, "drive"), ["Subject::step", "A::step"]);
    }

    #[test]
    fn bare_fn_references_count_as_edges() {
        let g = Graph::build(&[unit(
            "a.rs",
            "fn hook() {}\nfn install() { register(hook); }\nfn register(_f: fn()) {}\n",
        )]);
        let names = edge_names(&g, "install");
        assert!(names.contains(&"hook".to_string()), "{names:?}");
        assert!(names.contains(&"register".to_string()), "{names:?}");
    }

    #[test]
    fn external_calls_and_macros_produce_no_edges() {
        let g = Graph::build(&[unit(
            "a.rs",
            "fn f() {\n    let v = Vec::new();\n    println(\"x\");\n    \
             assert_ne!(1, 2);\n    v.push(1);\n}\nfn println(_s: &str) {}\n",
        )]);
        // `println` here is a *local* fn call (no `!`), so it edges; the
        // macro and the std calls do not.
        assert_eq!(edge_names(&g, "f"), ["println"]);
    }

    #[test]
    fn nested_fn_bodies_are_not_attributed_to_the_outer_fn() {
        let g = Graph::build(&[unit(
            "a.rs",
            "fn outer() {\n    fn inner() { target(); }\n    inner();\n}\nfn target() {}\n",
        )]);
        assert_eq!(edge_names(&g, "outer"), ["inner"]);
        assert_eq!(edge_names(&g, "inner"), ["target"]);
    }

    #[test]
    fn top_level_references_mark_nodes() {
        let g = Graph::build(&[unit(
            "a.rs",
            "fn bench_kernel() {}\nfn unused() {}\ncriterion_group!(benches, bench_kernel);\n",
        )]);
        let idx = |name: &str| {
            g.nodes
                .iter()
                .position(|x| x.item.name == name)
                .expect("node")
        };
        assert!(g.top_refs[idx("bench_kernel")]);
        assert!(!g.top_refs[idx("unused")]);
    }
}
