//! The discretized FCSMA baseline (Li & Eryilmaz, as compared against in
//! Section VI of the paper).
//!
//! FCSMA is a debt-aware random-access scheme: in every idle backoff slot,
//! each backlogged link attempts transmission with a probability that grows
//! with its delivery debt. Two links attempting in the same slot collide and
//! both frames are lost. The paper highlights two structural weaknesses this
//! implementation reproduces:
//!
//! 1. *Contention loss* — random backoff wastes idle slots and, at larger
//!    network sizes, collision rates climb (the Bianchi effect the paper
//!    cites), so FCSMA supports only ≈70% of the admissible load.
//! 2. *Debt obliviousness* — the debt range is divided into finitely many
//!    sections, each mapped to one predetermined attempt probability
//!    ([`FcsmaQuantizer`]); beyond the last threshold FCSMA cannot react to
//!    further debt growth, which starves weak links in asymmetric networks
//!    (Figs. 7–8).

use rand::Rng;
use rtmac_model::LinkId;
use rtmac_phy::channel::LossModel;
use rtmac_phy::Medium;
use rtmac_sim::{Nanos, SimRng};

use crate::{IntervalOutcome, MacTiming};

/// Maps a delivery debt to a per-slot attempt probability through a finite
/// set of sections — the "predetermined sizes of the contention window" the
/// paper describes (an attempt probability `s` corresponds to a mean
/// contention window of `1/s` slots).
///
/// # Example
///
/// ```
/// use rtmac_mac::FcsmaQuantizer;
///
/// let q = FcsmaQuantizer::paper_default();
/// // Higher debt -> more aggressive, but saturating:
/// assert!(q.attempt_probability(0.1) < q.attempt_probability(5.0));
/// assert_eq!(q.attempt_probability(100.0), q.attempt_probability(1e9));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FcsmaQuantizer {
    /// Section boundaries, strictly increasing.
    thresholds: Vec<f64>,
    /// Attempt probabilities, one per section (`thresholds.len() + 1`).
    probs: Vec<f64>,
}

impl FcsmaQuantizer {
    /// Creates a quantizer from section boundaries and per-section attempt
    /// probabilities (`probs.len() == thresholds.len() + 1`, nondecreasing,
    /// each in `(0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if the shapes or ranges are violated.
    #[must_use]
    pub fn new(thresholds: Vec<f64>, probs: Vec<f64>) -> Self {
        assert_eq!(
            probs.len(),
            thresholds.len() + 1,
            "need one probability per section"
        );
        assert!(
            thresholds.windows(2).all(|w| w[0] < w[1]),
            "thresholds must be strictly increasing"
        );
        assert!(
            probs.iter().all(|&p| p > 0.0 && p <= 1.0),
            "attempt probabilities must lie in (0, 1]"
        );
        assert!(
            probs.windows(2).all(|w| w[0] <= w[1]),
            "attempt probabilities must be nondecreasing in debt"
        );
        FcsmaQuantizer { thresholds, probs }
    }

    /// The discretization used throughout the figure reproductions: six
    /// sections with mean contention windows 64, 32, 16, 16, 16, 16 slots.
    ///
    /// The saturation at CW = 16 (attempt probability 1/16) is deliberate:
    /// it is the "oblivious above a threshold" behaviour the paper
    /// attributes to FCSMA's finite discretization — once debt passes the
    /// last section boundary the window stops shrinking, so FCSMA cannot
    /// react to further debt growth.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(
            vec![0.25, 0.5, 1.0, 2.0, 4.0],
            vec![
                1.0 / 64.0,
                1.0 / 32.0,
                1.0 / 16.0,
                1.0 / 16.0,
                1.0 / 16.0,
                1.0 / 16.0,
            ],
        )
    }

    /// The attempt probability for a link carrying debt `d`.
    #[must_use]
    pub fn attempt_probability(&self, d: f64) -> f64 {
        let section = self.thresholds.iter().filter(|&&t| d >= t).count();
        self.probs[section]
    }
}

impl Default for FcsmaQuantizer {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The FCSMA per-interval engine.
///
/// Within an interval: at every idle slot boundary each backlogged link
/// attempts with its quantized probability. A sole attempter captures the
/// medium and transmits one packet; simultaneous attempts collide and
/// every frame in the episode is lost. Contention repeats per packet, so
/// the scheme pays idle-slot overhead on every transmission and collision
/// overhead that grows with the number of backlogged links.
#[derive(Debug, Clone)]
pub struct FcsmaEngine {
    timing: MacTiming,
}

impl FcsmaEngine {
    /// Creates the engine.
    #[must_use]
    pub fn new(timing: MacTiming) -> Self {
        FcsmaEngine { timing }
    }

    /// The timing context.
    #[must_use]
    pub fn timing(&self) -> &MacTiming {
        &self.timing
    }

    /// Runs one interval.
    ///
    /// * `arrivals[n]` — packets arriving at link `n`.
    /// * `attempt_probs[n]` — the per-slot attempt probability of link `n`
    ///   for this interval (the core crate derives it from delivery debt
    ///   via [`FcsmaQuantizer`]).
    ///
    /// # Panics
    ///
    /// Panics if vector lengths or the channel's link count disagree, or if
    /// a probability is outside `(0, 1]`.
    pub fn run_interval(
        &mut self,
        arrivals: &[u32],
        attempt_probs: &[f64],
        channel: &mut dyn LossModel,
        rng: &mut SimRng,
    ) -> IntervalOutcome {
        let n = arrivals.len();
        assert_eq!(attempt_probs.len(), n, "one attempt probability per link");
        assert_eq!(channel.n_links(), n, "channel link count mismatch");
        for (i, &p) in attempt_probs.iter().enumerate() {
            assert!(
                p > 0.0 && p <= 1.0,
                "attempt_probs[{i}] = {p} out of (0, 1]"
            );
        }

        let mut data: Vec<u32> = arrivals.to_vec();
        let mut outcome = IntervalOutcome::empty(n);
        let mut medium = Medium::new();
        let slot = self.timing.slot();
        let deadline = self.timing.deadline();

        let mut t = Nanos::ZERO;
        while t < deadline {
            // Stop once no backlogged link's frame still fits.
            let any_fits =
                (0..n).any(|l| data[l] > 0 && self.timing.fits(t, self.timing.data_airtime_for(l)));
            if !any_fits {
                break;
            }
            // Slotted contention: every backlogged link that could still
            // finish in time flips its coin.
            let attempters: Vec<usize> = (0..n)
                .filter(|&l| {
                    data[l] > 0
                        && self.timing.fits(t, self.timing.data_airtime_for(l))
                        && rng.random_bool(attempt_probs[l])
                })
                .collect();
            match attempters.len() {
                0 => {
                    outcome.idle_slots += 1;
                    t += slot;
                }
                1 => {
                    // Capture: transmit one packet, then everyone
                    // recontends (the slotted FCSMA model transmits one
                    // packet per successful capture).
                    let link = attempters[0];
                    let tx = medium.transmit(t, &[self.timing.data_airtime_for(link)]);
                    outcome.attempts[link] += 1;
                    if channel.attempt(LinkId::new(link), rng) {
                        data[link] -= 1;
                        outcome.deliveries[link] += 1;
                        outcome.latency_sum[link] += tx.ends_at;
                    }
                    t = tx.ends_at + slot;
                }
                _ => {
                    // Collision: all frames lost, medium busy for the
                    // longest of them.
                    let airtimes: Vec<Nanos> = attempters
                        .iter()
                        .map(|&l| self.timing.data_airtime_for(l))
                        .collect();
                    let tx = medium.transmit(t, &airtimes);
                    for &l in &attempters {
                        outcome.attempts[l] += 1;
                    }
                    t = tx.ends_at + slot;
                }
            }
        }

        outcome.collisions = medium.stats().collisions;
        outcome.busy_time = medium.stats().busy_time;
        outcome.leftover = deadline.saturating_sub(medium.busy_until());
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtmac_phy::channel::Bernoulli;
    use rtmac_phy::PhyProfile;
    use rtmac_sim::SeedStream;

    fn timing() -> MacTiming {
        MacTiming::new(PhyProfile::ieee80211a(), Nanos::from_millis(20), 1500)
    }

    #[test]
    fn quantizer_sections_and_saturation() {
        let q = FcsmaQuantizer::paper_default();
        assert_eq!(q.attempt_probability(0.0), 1.0 / 64.0);
        assert_eq!(q.attempt_probability(0.3), 1.0 / 32.0);
        assert_eq!(q.attempt_probability(0.7), 1.0 / 16.0);
        // Oblivious above the saturation point:
        assert_eq!(q.attempt_probability(1.5), 1.0 / 16.0);
        assert_eq!(q.attempt_probability(4.0), q.attempt_probability(4000.0));
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn quantizer_rejects_decreasing_probs() {
        let _ = FcsmaQuantizer::new(vec![1.0], vec![0.5, 0.25]);
    }

    #[test]
    #[should_panic(expected = "one probability per section")]
    fn quantizer_rejects_shape_mismatch() {
        let _ = FcsmaQuantizer::new(vec![1.0], vec![0.5]);
    }

    #[test]
    fn single_link_eventually_delivers() {
        let mut e = FcsmaEngine::new(timing());
        let mut ch = Bernoulli::reliable(1);
        let mut rng = SeedStream::new(1).rng(0);
        let out = e.run_interval(&[3], &[0.25], &mut ch, &mut rng);
        assert_eq!(out.deliveries, [3]);
        assert_eq!(out.collisions, 0);
    }

    #[test]
    fn collisions_occur_under_aggressive_contention() {
        // 10 links all attempting with probability 1 collide forever.
        let mut e = FcsmaEngine::new(timing());
        let mut ch = Bernoulli::reliable(10);
        let mut rng = SeedStream::new(2).rng(0);
        let out = e.run_interval(&[5; 10], &[1.0; 10], &mut ch, &mut rng);
        assert_eq!(out.total_deliveries(), 0);
        assert!(out.collisions > 0);
    }

    #[test]
    fn collision_rate_grows_with_network_size() {
        let run = |n: usize| {
            let mut e = FcsmaEngine::new(timing());
            let mut ch = Bernoulli::reliable(n);
            let mut rng = SeedStream::new(3).rng(n as u64);
            let mut collisions = 0;
            let mut episodes = 0;
            for _ in 0..50 {
                let out = e.run_interval(&vec![6; n], &vec![0.125; n], &mut ch, &mut rng);
                collisions += out.collisions;
                episodes += out.collisions + out.total_attempts();
            }
            collisions as f64 / episodes.max(1) as f64
        };
        let small = run(2);
        let large = run(20);
        assert!(
            large > small,
            "collision fraction should grow with N: {small} vs {large}"
        );
    }

    #[test]
    fn throughput_below_collision_free_capacity() {
        // Saturated symmetric network: FCSMA must deliver noticeably less
        // than the ~61-transmission collision-free budget.
        let mut e = FcsmaEngine::new(timing());
        let n = 20;
        let mut ch = Bernoulli::reliable(n);
        let mut rng = SeedStream::new(4).rng(0);
        let mut total = 0;
        let reps = 20;
        for _ in 0..reps {
            let out = e.run_interval(&vec![6; n], &vec![1.0 / 16.0; n], &mut ch, &mut rng);
            total += out.total_deliveries();
        }
        let per_interval = total as f64 / f64::from(reps);
        assert!(
            per_interval < 55.0,
            "FCSMA should lose capacity to contention, got {per_interval}"
        );
        assert!(per_interval > 20.0, "but not collapse: {per_interval}");
    }

    #[test]
    fn no_arrivals_short_circuits() {
        let mut e = FcsmaEngine::new(timing());
        let mut ch = Bernoulli::reliable(2);
        let mut rng = SeedStream::new(5).rng(0);
        let out = e.run_interval(&[0, 0], &[0.5, 0.5], &mut ch, &mut rng);
        assert_eq!(out.total_attempts(), 0);
        assert_eq!(out.idle_slots, 0);
    }
}
