//! Ultra-low-latency control messaging (Section VI-B of the paper): 10
//! sensor/actuator links exchange 100 B control packets under a 2 ms
//! deadline with a 99% delivery-ratio requirement — the industrial
//! networked-control setting that motivates the paper.
//!
//! Demonstrates per-link convergence tracking and debt inspection.
//!
//! ```sh
//! cargo run --release --example factory_control
//! ```

use rtmac::model::LinkId;
use rtmac::PolicySpec;
use rtmac_suite::scenarios;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let intervals = 10_000; // 20 seconds of factory time
    let watched = LinkId::new(9); // the lowest-priority link at startup

    let mut network = scenarios::control(10, 0.78, 0.99, 3)
        .with_policy(PolicySpec::db_dp())
        .with_track(watched.index(), 0.01)
        .network()?;
    let report = network.run(intervals);

    println!("control workload: 10 links, Bernoulli(0.78), p = 0.7, 2 ms deadline, 99% ratio");
    println!("policy: {}\n", report.policy);
    println!(
        "total deficiency after {} intervals: {:.4}",
        report.intervals, report.final_total_deficiency
    );
    println!("collisions: {}", report.collisions);

    let tracker = report.tracked.as_ref().expect("tracking configured");
    let q = network.requirements().q(watched);
    println!("\nwatched {watched} (priority 10 at startup): requirement {q:.3} per interval");
    println!(
        "  running throughput after {} intervals: {:.4}",
        intervals,
        tracker.history().last().copied().unwrap_or(0.0)
    );
    match tracker.settled_at() {
        Some(k) => println!("  settled within ±1% of the requirement at interval {k}"),
        None => println!("  still oscillating around the requirement at ±1% scale"),
    }

    println!("\nper-link state:");
    for link in network.config().links() {
        let latency = report.mean_latency[link.index()]
            .map_or("-".to_string(), |l| format!("{:.0} us", l.as_micros_f64()));
        println!(
            "  {link}: throughput {:.4}, debt {:+.3}, mean delivery latency {latency}",
            report.per_link_throughput[link.index()],
            report.final_debts[link.index()],
        );
    }
    println!(
        "\nmean delivery latency stays well inside the 2 ms deadline — the \
         debt-driven rotation keeps every link near the front of the \
         interval often enough."
    );
    Ok(())
}
